package experiment

import (
	"fmt"
	"math"
	"strings"

	"hpcap/internal/core"
	"hpcap/internal/drift"
	"hpcap/internal/fuse"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/registry"
	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
	"hpcap/internal/wire"
)

// FusionReplay is the result of the counter-fusion ablation: the same
// recorded browsing trace, corrupted by a scrape-level noise storm (NaN
// counter components, frozen collectors, clock skew), replayed through
// the serving pipeline twice — fusion off and fusion on — against a
// fault-free baseline of the identical trace. Fusion must win on both
// axes: the windowed vector error against the baseline (imputation
// recovers what the NaN-drop path loses) and the drift detectors' false
// fires (low-confidence flagging keeps frozen-but-finite windows out of
// the lifecycle, where the raw path feeds them in as clean evidence).
// The transcript is a pure function of the lab seed, byte-identical for
// any training worker count, shard count, and for network (capagent
// wire) versus direct ingest.
type FusionReplay struct {
	// Log is the golden-pinned transcript.
	Log string
	// BaselineWindows is the fault-free run's decision count; RawWindows
	// and FusedWindows the corrupted runs' (the raw path drops the
	// all-NaN windows, fusion decides them).
	BaselineWindows, RawWindows, FusedWindows int
	// RawErr and FusedErr are the mean windowed vector errors against
	// the fault-free baseline (missing windows count as total loss).
	RawErr, FusedErr float64
	// RawDrift and FusedDrift count drift detections recorded against
	// the site; every one is a false fire (the workload never changes).
	RawDrift, FusedDrift uint64
	// BaselineDrift must stay 0: the detector thresholds are tuned so a
	// clean run never fires, making every Raw fire attributable to the
	// storm alone.
	BaselineDrift uint64
	// LowConfidence counts the fused run's windows flagged below the
	// confidence floor; RawGuarded/FusedGuarded the decisions the
	// lifecycle guard refused to learn from.
	LowConfidence            uint64
	RawGuarded, FusedGuarded uint64
}

// fusionReplaySeed offsets the fusion trace away from every other seed
// the lab derives (training 0/1, test 100s, interleave 104, drift replay
// 300, chaos replay 400).
const fusionReplaySeed = 500

// fusionStream is one corrupted copy of the recorded trace: per-second
// timestamps (shared by both tiers, as one fused scrape) and per-tier
// 1-second vectors.
type fusionStream struct {
	times []float64
	vecs  [server.NumTiers][][]float64
}

// fusionStorm corrupts a copy of the recorded trace at scrape level —
// the faults a fusion stage can see through, as opposed to the transport
// faults chaosStorm scripts. Window seq covers sample indices
// [W·(seq-1), W·seq):
//
//	w8      four seconds lose the app tier's first counter to NaN
//	w9–w14  both collectors freeze, replaying w8's last clean scrape
//	        with live timestamps (finite, plausible, and wrong)
//	w15     the scrape clock skews +0.3s, displacing each window's
//	        boundary sample (equal damage with fusion on or off)
//	w16     the app tier's instr_rate and l2_miss_rate are NaN all window
//	w17     the db tier's ipc and l2_ref_rate are NaN all window
func fusionStorm(times []float64, vecs [server.NumTiers][][]float64, w int) fusionStream {
	s := fusionStream{times: append([]float64(nil), times...)}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		s.vecs[tier] = append([][]float64(nil), vecs[tier]...)
	}
	// idx(seq) is the first sample index of window seq.
	idx := func(seq int) int { return w * (seq - 1) }
	corrupt := func(tier server.TierID, i int, comps ...int) {
		v := append([]float64(nil), s.vecs[tier][i]...)
		for _, c := range comps {
			v[c] = math.NaN()
		}
		s.vecs[tier][i] = v
	}
	// w8: a sparse NaN burst, under the staleness budget.
	for _, off := range []int{3, 10, 17, 24} {
		corrupt(server.TierApp, idx(8)+off, 0)
	}
	// w9–w14: frozen collectors. The replayed scrape is w8's last second,
	// which the burst above left clean.
	frozen := idx(9) - 1
	for i := idx(9); i < idx(15) && i < len(s.times); i++ {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			s.vecs[tier][i] = s.vecs[tier][frozen]
		}
	}
	// w15: clock skew on the whole scrape stream.
	for i := idx(15); i < idx(16) && i < len(s.times); i++ {
		s.times[i] += 0.3
	}
	// w16/w17: a counter pair lost for a full window on each tier.
	for i := idx(16); i < idx(17) && i < len(s.times); i++ {
		corrupt(server.TierApp, i, 0, 7)
	}
	for i := idx(17); i < idx(18) && i < len(s.times); i++ {
		corrupt(server.TierDB, i, 2, 6)
	}
	return s
}

// fusionRun captures one sub-run's publication-order transcript lines,
// decisions, and final site counters.
type fusionRun struct {
	lines     []string
	decisions []serve.Decision
	stats     serve.SiteStats
}

// fusionRunner replays one prepared stream through one pipeline variant
// (unsharded, sharded, or wire loopback). fcfg nil means fusion off.
type fusionRunner func(stream fusionStream, fcfg *fuse.Config) (*fusionRun, error)

// RunFusionReplay replays the fusion ablation through the unsharded
// pipeline. workers bounds the training fan-out only; the transcript is
// bit-identical for any value.
func (l *Lab) RunFusionReplay(workers int) (*FusionReplay, error) {
	return l.runFusionReplay(workers, 0, false)
}

// RunFusionReplaySharded replays the same ablation through the sharded
// pipeline; the transcript must be byte-identical to RunFusionReplay's.
func (l *Lab) RunFusionReplaySharded(workers, shards int) (*FusionReplay, error) {
	if shards < 1 {
		shards = 1
	}
	return l.runFusionReplay(workers, shards, false)
}

// RunFusionReplayLoopback ships every stream as capagent wire frames
// through a real Sender → TCP → FrameServer chain into a sharded
// pipeline; the transcript must be byte-identical to the direct runs —
// the transport may not change a single fused value.
func (l *Lab) RunFusionReplayLoopback(workers int) (*FusionReplay, error) {
	return l.runFusionReplay(workers, 2, true)
}

// fusionVecErr is the windowed vector error of one decision against its
// fault-free counterpart: mean over tiers and counters of
// |v−b| / (1+|b|).
func fusionVecErr(d, base *serve.Decision) float64 {
	var sum float64
	n := 0
	for tier := range d.Vectors {
		for k, v := range d.Vectors[tier] {
			b := base.Vectors[tier][k]
			sum += math.Abs(v-b) / (1 + math.Abs(b))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// fusionWindowedErr scores a corrupted run against the baseline: the
// mean per-window vector error over every baseline-decided window, with
// a window the run failed to decide counting as total loss (error 1).
func fusionWindowedErr(run *fusionRun, baseline []serve.Decision) float64 {
	bySeq := make(map[int64]*serve.Decision, len(run.decisions))
	for i := range run.decisions {
		bySeq[run.decisions[i].Seq] = &run.decisions[i]
	}
	var sum float64
	for i := range baseline {
		b := &baseline[i]
		if d, ok := bySeq[b.Seq]; ok {
			sum += fusionVecErr(d, b)
		} else {
			sum += 1
		}
	}
	if len(baseline) == 0 {
		return 0
	}
	return sum / float64(len(baseline))
}

// runFusionReplay is the shared body; shards == 0 selects the unsharded
// pipeline, loopback additionally routes every sample over the wire.
func (l *Lab) runFusionReplay(workers, shards int, loopback bool) (*FusionReplay, error) {
	const level = metrics.LevelHPC
	wb, err := l.Workload(tpcw.Browsing())
	if err != nil {
		return nil, err
	}
	btr, err := l.TrainingTrace(tpcw.Browsing())
	if err != nil {
		return nil, err
	}
	names := btr.Names(level)
	mon, err := core.Train(level, names, []core.TrainingSet{trainingSetOf("browsing", btr, level)}, core.Config{
		Learner:  bayes.TANLearner(),
		Synopsis: core.DefaultSynopsisConfig(l.Seed),
		Workers:  workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: train fusion monitor: %w", err)
	}

	tr, err := Generate(TraceConfig{
		Server:        l.Server,
		Schedule:      chaosSchedule(wb, l.Scale),
		Window:        l.Scale.Window,
		Warmup:        l.Scale.WarmupWindows,
		Seed:          l.Seed + fusionReplaySeed,
		Labeler:       l.Labeler,
		RecordSeconds: true,
		Topology:      l.Topology,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: generate fusion trace: %w", err)
	}
	clean := fusionStream{times: tr.SecTimes}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		clean.vecs[tier] = tr.SecondVectors(level, tier)
	}
	storm := fusionStorm(clean.times, clean.vecs, l.Scale.Window)

	winLine := func(d serve.Decision) string {
		w := tr.Windows[d.Seq-1]
		return fmt.Sprintf("window seq=%d predicted=%t truth=%t degraded=%t missing=%d conf=%.3f lowconf=%t\n",
			d.Seq, d.Prediction.Overload, w.Overload == 1, d.Degraded, d.Missing, d.Confidence, d.LowConfidence)
	}
	runner := l.fusionRunner(mon, shards, loopback, winLine)

	// The lifecycle stage is identical for every sub-run: replay-tight
	// detector thresholds (a clean run must never fire, so every raw-run
	// fire is a storm artifact), guard on, retraining structurally
	// impossible (more history demanded than the trace has windows).
	lifecycle := func(run *fusionRun, log *strings.Builder) (uint64, error) {
		p, err := serve.NewPipeline(mon, serve.Config{Window: l.Scale.Window})
		if err != nil {
			return 0, err
		}
		mgr, err := registry.NewManager(registry.Config{
			Pipeline: p,
			Initial:  mon,
			Names:    names,
			Train: core.Config{
				Learner:  bayes.TANLearner(),
				Synopsis: core.DefaultSynopsisConfig(l.Seed + 1),
				Workers:  workers,
			},
			Drift: drift.Config{
				PHDelta:       0.01,
				PHLambda:      1.5,
				MinWindows:    6,
				MixRefWindows: 6,
				MixWindow:     8,
				MixThreshold:  0.08,
				MixPatience:   3,
			},
			HistoryWindows:  64,
			MinTrainWindows: 48,
			ShadowWindows:   8,
			CooldownWindows: 10 * len(tr.Windows),
			OnEvent: func(e registry.Event) {
				fmt.Fprintf(log, "  %s\n", e)
			},
		})
		if err != nil {
			return 0, err
		}
		for _, d := range run.decisions {
			mgr.HandleDecision(d)
			w := tr.Windows[d.Seq-1]
			mgr.ObserveTruth(d.Site, d.Seq, registry.Truth{
				Overload:    w.Overload == 1,
				Bottleneck:  w.Bottleneck,
				Throughput:  w.Throughput,
				ClassCounts: w.Classes,
			})
		}
		st, _ := p.SiteStats("site")
		run.stats.DriftSignals = st.DriftSignals
		return mgr.Guarded(), nil
	}

	var log strings.Builder
	fmt.Fprintln(&log, "storm nan w8 app[0]x4; stuck w9-w14; skew w15 +0.3s; nan w16 app[0,7]; nan w17 db[2,6]")
	section := func(name string, stream fusionStream, fcfg *fuse.Config) (*fusionRun, uint64, error) {
		run, err := runner(stream, fcfg)
		if err != nil {
			return nil, 0, err
		}
		fmt.Fprintf(&log, "--- %s ---\n", name)
		for _, ln := range run.lines {
			fmt.Fprint(&log, ln)
		}
		guarded, err := lifecycle(run, &log)
		if err != nil {
			return nil, 0, err
		}
		s := run.stats
		fmt.Fprintf(&log, "%s decided=%d degraded=%d dropped=%d lowconf=%d fused=%d imputed=%d gated=%d skipped_nan=%d skipped_late=%d resets=%d drift=%d guarded=%d\n",
			name, s.WindowsDecided, s.WindowsDegraded, s.WindowsDropped, s.WindowsLowConfidence,
			s.SamplesFused, s.FuseImputed, s.FuseGated, s.SamplesBadValue, s.SamplesLate,
			s.SessionResets, s.DriftSignals, guarded)
		return run, guarded, nil
	}

	base, _, err := section("baseline", clean, nil)
	if err != nil {
		return nil, err
	}
	raw, rawGuarded, err := section("raw", storm, nil)
	if err != nil {
		return nil, err
	}
	fcfg := fuse.DefaultConfig()
	fused, fusedGuarded, err := section("fused", storm, &fcfg)
	if err != nil {
		return nil, err
	}

	res := &FusionReplay{
		BaselineWindows: len(base.decisions),
		RawWindows:      len(raw.decisions),
		FusedWindows:    len(fused.decisions),
		RawErr:          fusionWindowedErr(raw, base.decisions),
		FusedErr:        fusionWindowedErr(fused, base.decisions),
		RawDrift:        raw.stats.DriftSignals,
		FusedDrift:      fused.stats.DriftSignals,
		BaselineDrift:   base.stats.DriftSignals,
		LowConfidence:   fused.stats.WindowsLowConfidence,
		RawGuarded:      rawGuarded,
		FusedGuarded:    fusedGuarded,
	}
	fmt.Fprintf(&log, "error raw=%.6f fused=%.6f\n", res.RawErr, res.FusedErr)
	fmt.Fprintf(&log, "drift baseline=%d raw=%d fused=%d lowconf=%d\n",
		res.BaselineDrift, res.RawDrift, res.FusedDrift, res.LowConfidence)
	fmt.Fprintf(&log, "replay baseline=%d raw=%d fused=%d guarded raw=%d fused=%d\n",
		res.BaselineWindows, res.RawWindows, res.FusedWindows, res.RawGuarded, res.FusedGuarded)
	res.Log = log.String()
	return res, nil
}

// fusionRunner builds the variant-specific stream replayer. Every
// variant feeds the same per-scrape stream in the same per-site order,
// so the captured decision and health sequences are identical; only the
// plumbing differs. winLine formats a decision's transcript line, so
// run.lines freezes the exact publication order (decision first, then
// the ladder transitions it caused).
func (l *Lab) fusionRunner(mon *core.Monitor, shards int, loopback bool, winLine func(serve.Decision) string) fusionRunner {
	return func(stream fusionStream, fcfg *fuse.Config) (*fusionRun, error) {
		run := &fusionRun{}
		cfg := serve.Config{
			Window: l.Scale.Window,
			Fuse:   fcfg,
			OnDecision: func(d serve.Decision) {
				run.decisions = append(run.decisions, d)
				run.lines = append(run.lines, winLine(d))
			},
			OnHealth: func(ev serve.HealthEvent) {
				run.lines = append(run.lines, fmt.Sprintf("  health %s->%s seq=%d\n", ev.From, ev.To, ev.Seq))
			},
		}
		if shards == 0 {
			p, err := serve.NewPipeline(mon, cfg)
			if err != nil {
				return nil, err
			}
			for i, ts := range stream.times {
				for tier := server.TierID(0); tier < server.NumTiers; tier++ {
					p.Ingest(serve.Sample{Site: "site", Tier: tier, Time: ts, Values: stream.vecs[tier][i]})
				}
			}
			p.Flush()
			run.stats, _ = p.SiteStats("site")
			return run, nil
		}
		sp, err := serve.NewShardedPipeline(mon, cfg, serve.ShardConfig{Shards: shards})
		if err != nil {
			return nil, err
		}
		defer sp.Close()
		if !loopback {
			for i, ts := range stream.times {
				for tier := server.TierID(0); tier < server.NumTiers; tier++ {
					sp.Ingest(serve.Sample{Site: "site", Tier: tier, Time: ts, Values: stream.vecs[tier][i]})
				}
			}
			sp.Flush()
			run.stats, _ = sp.SiteStats("site")
			return run, nil
		}
		// Loopback: the same stream as capagent wire frames over TCP.
		ing := serve.NewIngest(sp)
		fsrv, err := serve.NewFrameServer(serve.ListenConfig{}, ing, nil)
		if err != nil {
			return nil, err
		}
		snd, err := wire.NewSender(fsrv.Addr().String(), wire.AgentConfig{FrameSamples: 5, QueueFrames: 4096})
		if err != nil {
			fsrv.Close()
			return nil, err
		}
		frame := wire.Frame{Site: "site"}
		sent := 0
		for i, ts := range stream.times {
			var s wire.Sample
			s.Time = ts
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				s.Vecs[tier] = stream.vecs[tier][i]
			}
			frame.Samples = append(frame.Samples, s)
			if len(frame.Samples) == 5 {
				snd.Send(&frame)
				sent++
				frame = wire.Frame{Site: "site", Seq: frame.Seq + 1}
			}
		}
		if len(frame.Samples) > 0 {
			snd.Send(&frame)
			sent++
		}
		snd.Close()
		if st := snd.Stats(); st.Dropped() != 0 || st.Sent != uint64(sent) {
			fsrv.Close()
			return nil, fmt.Errorf("experiment: fusion loopback sender lost frames: %+v", st)
		}
		fsrv.WaitConns(1)
		if err := fsrv.Close(); err != nil {
			return nil, err
		}
		sp.Flush()
		run.stats, _ = sp.SiteStats("site")
		return run, nil
	}
}
