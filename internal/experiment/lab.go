package experiment

import (
	"context"
	"fmt"
	"sync"

	"hpcap/internal/core"
	"hpcap/internal/metrics"
	"hpcap/internal/ml"
	"hpcap/internal/parallel"
	"hpcap/internal/pi"
	"hpcap/internal/predictor"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

// Lab bundles the shared state of the evaluation: the testbed
// configuration, the measured workload knees, the generated traces, and
// the trained monitors, each computed once and cached so that the
// experiments reproducing different tables and figures share identical
// inputs (as they did on the paper's physical testbed).
//
// A Lab is safe for concurrent use: every cache entry is guarded by its
// own once-cell, so concurrent experiments that need the same workload,
// trace, or monitor share one deterministic computation instead of
// duplicating (or racing on) it. Because all randomness is derived from
// Seed per key, results are bit-identical whatever Workers is set to —
// the determinism golden tests enforce this.
type Lab struct {
	Server  server.Config
	Scale   Scale
	Labeler pi.Labeler
	// Seed separates trace randomness between training (Seed+k) and test
	// (Seed+100+k) runs.
	Seed int64
	// Workers bounds the fan-out of the experiment grids (Table I,
	// Figure 4, the ablation, overhead runs) and Prewarm; zero or
	// negative selects GOMAXPROCS. Workers = 1 reproduces the strictly
	// sequential run.
	Workers int
	// Topology, when non-nil, runs every generated trace on the tier-DAG
	// testbed over this topology instead of the fixed two-tier one (see
	// TraceConfig.Topology). The degenerate server.TwoTierTopology(Server)
	// reproduces every nil-topology transcript byte for byte — the
	// two-tier DAG equivalence test pins this against the chaos and
	// fusion goldens.
	Topology *server.TopologyConfig

	mu        sync.Mutex
	workloads map[string]*cell[Workload]
	traces    map[string]*cell[*Trace]
	monitors  map[monitorKey]*cell[*core.Monitor]
}

// cell is a singleflight slot: the first caller computes, everyone else
// waits on the same result.
type cell[T any] struct {
	once sync.Once
	val  T
	err  error
}

// monitorKey identifies one trained coordinated monitor.
type monitorKey struct {
	level   metrics.Level
	cfg     predictor.Config
	learner string
}

// NewLab returns a Lab over the default testbed at the given scale.
func NewLab(scale Scale) *Lab {
	return &Lab{
		Server:    server.DefaultConfig(),
		Scale:     scale,
		Labeler:   pi.Labeler{},
		Seed:      1,
		workloads: make(map[string]*cell[Workload]),
		traces:    make(map[string]*cell[*Trace]),
		monitors:  make(map[monitorKey]*cell[*core.Monitor]),
	}
}

// workers returns the effective fan-out bound.
func (l *Lab) workers() int { return parallel.Workers(l.Workers) }

// getCell returns the once-cell for key, creating it under the Lab mutex.
func getCell[K comparable, T any](l *Lab, m map[K]*cell[T], key K) *cell[T] {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := m[key]
	if !ok {
		c = new(cell[T])
		m[key] = c
	}
	return c
}

// TrainingMixes returns the representative mixes the paper trains on.
func TrainingMixes() []tpcw.Mix {
	return []tpcw.Mix{tpcw.Browsing(), tpcw.Ordering()}
}

// Workload measures (once) and returns the knees of a mix.
func (l *Lab) Workload(mix tpcw.Mix) (Workload, error) {
	c := getCell(l, l.workloads, mix.Name)
	c.once.Do(func() {
		c.val, c.err = DefineWorkload(l.Server, mix, l.Labeler, l.Scale)
	})
	return c.val, c.err
}

// generate runs Generate with once-guarded caching under the given key.
func (l *Lab) generate(key string, sched tpcw.Schedule, seed int64, overheadOn bool) (*Trace, error) {
	c := getCell(l, l.traces, key)
	c.once.Do(func() {
		tr, err := Generate(TraceConfig{
			Server:          l.Server,
			Schedule:        sched,
			Window:          l.Scale.Window,
			Warmup:          l.Scale.WarmupWindows,
			Seed:            seed,
			Labeler:         l.Labeler,
			CollectOverhead: overheadOn,
			Topology:        l.Topology,
		})
		if err != nil {
			c.err = fmt.Errorf("experiment: generate %s: %w", key, err)
			return
		}
		c.val = tr
	})
	return c.val, c.err
}

// monitor trains (once) and returns the coordinated monitor for
// (level, coordinator config, learner). Cached monitors are shared:
// concurrent Predict callers must use core.Monitor.NewSession, and online
// Feedback adaptation on a shared lab monitor leaks into later users of
// the same key — train privately via core.Train for that.
func (l *Lab) monitor(level metrics.Level, coordCfg predictor.Config, learner ml.Learner) (*core.Monitor, error) {
	c := getCell(l, l.monitors, monitorKey{level, coordCfg, learner.Name})
	c.once.Do(func() {
		c.val, c.err = l.trainMonitor(level, coordCfg, learner)
	})
	return c.val, c.err
}

// TrainingTrace returns the cached training trace (ramp-up + spikes +
// flash) for a mix.
func (l *Lab) TrainingTrace(mix tpcw.Mix) (*Trace, error) {
	w, err := l.Workload(mix)
	if err != nil {
		return nil, err
	}
	return l.generate("train/"+mix.Name, TrainingSchedule(w, l.Scale), l.Seed+int64(len(mix.Name)), false)
}

// TestKind names the paper's four test workloads (§IV.A).
type TestKind string

// The four test workloads of the evaluation.
const (
	TestBrowsing    TestKind = "browsing"
	TestOrdering    TestKind = "ordering"
	TestInterleaved TestKind = "interleaved"
	TestUnknown     TestKind = "unknown"
)

// String returns the workload's name as used in the paper's figures,
// completing the Stringer set alongside metrics.Level, predictor.Scheme,
// and server.TierID.
func (k TestKind) String() string { return string(k) }

// TestKinds returns the four test workloads in the paper's order.
func TestKinds() []TestKind {
	return []TestKind{TestOrdering, TestBrowsing, TestInterleaved, TestUnknown}
}

// TestTrace returns the cached test trace of one kind.
func (l *Lab) TestTrace(kind TestKind) (*Trace, error) {
	switch kind {
	case TestBrowsing, TestOrdering, TestUnknown:
		mix := tpcw.Browsing()
		if kind == TestOrdering {
			mix = tpcw.Ordering()
		}
		if kind == TestUnknown {
			mix = tpcw.Unknown()
		}
		w, err := l.Workload(mix)
		if err != nil {
			return nil, err
		}
		return l.generate("test/"+string(kind), TestSchedule(w, l.Scale), l.Seed+100+int64(len(kind)), false)
	case TestInterleaved:
		wb, err := l.Workload(tpcw.Browsing())
		if err != nil {
			return nil, err
		}
		wo, err := l.Workload(tpcw.Ordering())
		if err != nil {
			return nil, err
		}
		return l.generate("test/interleaved", InterleavedSchedule(wb, wo, l.Scale), l.Seed+104, false)
	default:
		return nil, fmt.Errorf("experiment: unknown test kind %q", kind)
	}
}

// Prewarm measures every workload knee and generates every training and
// test trace of the evaluation, fanning the independent generations out
// across Workers. It is the parallel equivalent of the lazy warm-up the
// sequential experiments perform implicitly, and it leaves the Lab's
// caches identical to a sequential run's.
func (l *Lab) Prewarm(ctx context.Context) error {
	// Knees first: every schedule is expressed relative to them.
	mixes := []tpcw.Mix{tpcw.Browsing(), tpcw.Ordering(), tpcw.Unknown()}
	err := parallel.ForEach(ctx, len(mixes), l.workers(), func(i int) error {
		_, err := l.Workload(mixes[i])
		return err
	})
	if err != nil {
		return err
	}
	// Then every trace, each seed-isolated and independent.
	var tasks []func() error
	for _, mix := range TrainingMixes() {
		mix := mix
		tasks = append(tasks, func() error {
			_, err := l.TrainingTrace(mix)
			return err
		})
	}
	for _, kind := range TestKinds() {
		kind := kind
		tasks = append(tasks, func() error {
			_, err := l.TestTrace(kind)
			return err
		})
	}
	return parallel.ForEach(ctx, len(tasks), l.workers(), func(i int) error {
		return tasks[i]()
	})
}
