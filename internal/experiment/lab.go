package experiment

import (
	"fmt"

	"hpcap/internal/pi"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

// Lab bundles the shared state of the evaluation: the testbed
// configuration, the measured workload knees, and the generated traces,
// each computed once and cached so that the experiments reproducing
// different tables and figures share identical inputs (as they did on the
// paper's physical testbed).
type Lab struct {
	Server  server.Config
	Scale   Scale
	Labeler pi.Labeler
	// Seed separates trace randomness between training (Seed+k) and test
	// (Seed+100+k) runs.
	Seed int64

	workloads map[string]Workload
	traces    map[string]*Trace
}

// NewLab returns a Lab over the default testbed at the given scale.
func NewLab(scale Scale) *Lab {
	return &Lab{
		Server:    server.DefaultConfig(),
		Scale:     scale,
		Labeler:   pi.Labeler{},
		Seed:      1,
		workloads: make(map[string]Workload),
		traces:    make(map[string]*Trace),
	}
}

// TrainingMixes returns the representative mixes the paper trains on.
func TrainingMixes() []tpcw.Mix {
	return []tpcw.Mix{tpcw.Browsing(), tpcw.Ordering()}
}

// Workload measures (once) and returns the knees of a mix.
func (l *Lab) Workload(mix tpcw.Mix) (Workload, error) {
	if w, ok := l.workloads[mix.Name]; ok {
		return w, nil
	}
	w, err := DefineWorkload(l.Server, mix, l.Labeler, l.Scale)
	if err != nil {
		return Workload{}, err
	}
	l.workloads[mix.Name] = w
	return w, nil
}

// generate runs Generate with caching under the given key.
func (l *Lab) generate(key string, sched tpcw.Schedule, seed int64, overheadOn bool) (*Trace, error) {
	if tr, ok := l.traces[key]; ok {
		return tr, nil
	}
	tr, err := Generate(TraceConfig{
		Server:          l.Server,
		Schedule:        sched,
		Window:          l.Scale.Window,
		Warmup:          l.Scale.WarmupWindows,
		Seed:            seed,
		Labeler:         l.Labeler,
		CollectOverhead: overheadOn,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: generate %s: %w", key, err)
	}
	l.traces[key] = tr
	return tr, nil
}

// TrainingTrace returns the cached training trace (ramp-up + spikes +
// flash) for a mix.
func (l *Lab) TrainingTrace(mix tpcw.Mix) (*Trace, error) {
	w, err := l.Workload(mix)
	if err != nil {
		return nil, err
	}
	return l.generate("train/"+mix.Name, TrainingSchedule(w, l.Scale), l.Seed+int64(len(mix.Name)), false)
}

// TestKind names the paper's four test workloads (§IV.A).
type TestKind string

// The four test workloads of the evaluation.
const (
	TestBrowsing    TestKind = "browsing"
	TestOrdering    TestKind = "ordering"
	TestInterleaved TestKind = "interleaved"
	TestUnknown     TestKind = "unknown"
)

// TestKinds returns the four test workloads in the paper's order.
func TestKinds() []TestKind {
	return []TestKind{TestOrdering, TestBrowsing, TestInterleaved, TestUnknown}
}

// TestTrace returns the cached test trace of one kind.
func (l *Lab) TestTrace(kind TestKind) (*Trace, error) {
	switch kind {
	case TestBrowsing, TestOrdering, TestUnknown:
		mix := tpcw.Browsing()
		if kind == TestOrdering {
			mix = tpcw.Ordering()
		}
		if kind == TestUnknown {
			mix = tpcw.Unknown()
		}
		w, err := l.Workload(mix)
		if err != nil {
			return nil, err
		}
		return l.generate("test/"+string(kind), TestSchedule(w, l.Scale), l.Seed+100+int64(len(kind)), false)
	case TestInterleaved:
		wb, err := l.Workload(tpcw.Browsing())
		if err != nil {
			return nil, err
		}
		wo, err := l.Workload(tpcw.Ordering())
		if err != nil {
			return nil, err
		}
		return l.generate("test/interleaved", InterleavedSchedule(wb, wo, l.Scale), l.Seed+104, false)
	default:
		return nil, fmt.Errorf("experiment: unknown test kind %q", kind)
	}
}
