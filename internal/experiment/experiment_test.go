package experiment

import (
	"math"
	"sync"
	"testing"

	"hpcap/internal/metrics"
	"hpcap/internal/pi"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

// sharedLab is built once: experiments share traces, as on the paper's
// testbed, and trace generation dominates test runtime.
var (
	labOnce sync.Once
	lab     *Lab
)

func testLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		lab = NewLab(QuickScale())
	})
	return lab
}

func TestFindKneeBracketsAndOrdering(t *testing.T) {
	l := testLab(t)
	wb, err := l.Workload(tpcw.Browsing())
	if err != nil {
		t.Fatal(err)
	}
	wo, err := l.Workload(tpcw.Ordering())
	if err != nil {
		t.Fatal(err)
	}
	if wb.Knee < 100 || wb.Knee > 500 {
		t.Errorf("browsing knee = %d, out of plausible range", wb.Knee)
	}
	if wo.Knee <= wb.Knee {
		t.Errorf("ordering knee %d should exceed browsing knee %d (DB saturates first)",
			wo.Knee, wb.Knee)
	}
	// The flash variant pushes far less database work per request, so its
	// knee sits well above the plain browsing knee.
	if wb.FlashKnee < wb.Knee*2 {
		t.Errorf("browsing flash knee %d should be well above the plain knee %d",
			wb.FlashKnee, wb.Knee)
	}
}

func TestFindKneeRejectsBadBracket(t *testing.T) {
	cfg := server.DefaultConfig()
	if _, err := FindKnee(cfg, tpcw.Browsing(), pi.Labeler{}, 0, 100); err == nil {
		t.Error("lo=0 not rejected")
	}
	if _, err := FindKnee(cfg, tpcw.Browsing(), pi.Labeler{}, 100, 100); err == nil {
		t.Error("hi=lo not rejected")
	}
}

func TestGenerateTraceStructure(t *testing.T) {
	l := testLab(t)
	tr, err := l.TrainingTrace(tpcw.Browsing())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Windows) < 30 {
		t.Fatalf("training trace has %d windows, want a rich trace", len(tr.Windows))
	}
	var over, under int
	for _, w := range tr.Windows {
		if len(w.OS[server.TierApp]) != len(tr.OSNames) ||
			len(w.OS[server.TierDB]) != len(tr.OSNames) {
			t.Fatal("OS vector width mismatch")
		}
		if len(w.HPC[server.TierApp]) != len(tr.HPCNames) ||
			len(w.HPC[server.TierDB]) != len(tr.HPCNames) {
			t.Fatal("HPC vector width mismatch")
		}
		if w.Overload == 1 {
			over++
		} else {
			under++
		}
		if w.Mix == "" {
			t.Fatal("window missing mix name")
		}
	}
	// Training sets must carry both classes in quantity.
	if over < 5 || under < 5 {
		t.Errorf("label balance too skewed: %d overloaded, %d underloaded", over, under)
	}
	if len(tr.HPCSamples[server.TierApp]) != len(tr.Windows) {
		t.Errorf("PI sample series misaligned: %d vs %d windows",
			len(tr.HPCSamples[server.TierApp]), len(tr.Windows))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w, err := testLab(t).Workload(tpcw.Browsing())
	if err != nil {
		t.Fatal(err)
	}
	cfg := TraceConfig{
		Server:   server.DefaultConfig(),
		Schedule: tpcw.Steady(w.Mix, w.Knee, 120),
		Window:   30,
		Seed:     5,
		Labeler:  pi.Labeler{},
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Windows) != len(b.Windows) {
		t.Fatalf("window counts differ: %d vs %d", len(a.Windows), len(b.Windows))
	}
	for i := range a.Windows {
		if a.Windows[i].Overload != b.Windows[i].Overload {
			t.Fatalf("labels diverge at window %d", i)
		}
		for j := range a.Windows[i].HPC[server.TierDB] {
			if a.Windows[i].HPC[server.TierDB][j] != b.Windows[i].HPC[server.TierDB][j] {
				t.Fatalf("HPC vectors diverge at window %d metric %d", i, j)
			}
		}
	}
}

func TestBottleneckGroundTruthFollowsMix(t *testing.T) {
	l := testLab(t)
	for _, tc := range []struct {
		mix  tpcw.Mix
		want server.TierID
	}{
		{tpcw.Browsing(), server.TierDB},
		{tpcw.Ordering(), server.TierApp},
	} {
		tr, err := l.TrainingTrace(tc.mix)
		if err != nil {
			t.Fatal(err)
		}
		match, over := 0, 0
		for _, w := range tr.Windows {
			if w.Overload != 1 || w.Mix != tc.mix.Name {
				continue
			}
			over++
			if w.Bottleneck == tc.want {
				match++
			}
		}
		if over == 0 {
			t.Fatalf("%s: no overloaded windows of the plain mix", tc.mix.Name)
		}
		// Overload-onset windows can transiently peg the other tier
		// (a fresh surge floods the DB before the app queue builds), so
		// the match need not be perfect.
		if frac := float64(match) / float64(over); frac < 0.7 {
			t.Errorf("%s: bottleneck ground truth matches %s tier in only %.0f%% of overloaded windows",
				tc.mix.Name, tc.want, frac*100)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	l := testLab(t)
	t1a, err := l.RunTable1(TestBrowsing)
	if err != nil {
		t.Fatal(err)
	}
	t1b, err := l.RunTable1(TestOrdering)
	if err != nil {
		t.Fatal(err)
	}

	// Ordering input: only the ordering/app synopses are reliable.
	for _, level := range []metrics.Level{metrics.LevelOS, metrics.LevelHPC} {
		if ba := t1b.Cell("ordering", server.TierApp, level, "Naive"); ba < 0.8 {
			t.Errorf("table1b ordering/app/%s Naive = %.3f, want ≥0.8", level, ba)
		}
		// Synopses from the wrong workload+tier transfer poorly.
		if ba := t1b.Cell("browsing", server.TierDB, level, "TAN"); ba > 0.75 {
			t.Errorf("table1b browsing/db/%s TAN = %.3f, want poor transfer", level, ba)
		}
	}
	// Browsing input: the browsing/db synopses carry the signal.
	if ba := t1a.Cell("browsing", server.TierDB, metrics.LevelHPC, "LR"); ba < 0.75 {
		t.Errorf("table1a browsing/db/HPC LR = %.3f, want ≥0.75", ba)
	}
	if ba := t1a.Cell("ordering", server.TierApp, metrics.LevelHPC, "TAN"); ba > 0.75 {
		t.Errorf("table1a ordering/app/HPC TAN = %.3f, want poor transfer", ba)
	}
	// Every cell is a defined balanced accuracy.
	for _, res := range []*Table1Result{t1a, t1b} {
		if len(res.Cells) != 32 {
			t.Fatalf("table has %d cells, want 2 workloads × 2 tiers × 2 levels × 4 learners = 32",
				len(res.Cells))
		}
		for _, c := range res.Cells {
			if c.BA < 0 || c.BA > 1 || math.IsNaN(c.BA) {
				t.Errorf("cell %s/%s/%s/%s BA = %v out of range",
					c.Workload, c.Tier, c.Level, c.Learner, c.BA)
			}
		}
	}
	if t1a.Cell("missing", server.TierApp, metrics.LevelOS, "LR") != -1 {
		t.Error("missing cell should return -1")
	}
	if t1a.String() == "" || t1b.String() == "" {
		t.Error("empty table rendering")
	}
}

func TestFig3Shape(t *testing.T) {
	l := testLab(t)
	res, err := l.RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 10 {
		t.Fatalf("fig3 has %d points", len(res.Points))
	}
	// PI must agree with throughput in the driven regime (the paper's
	// "high agreement") and never lag it.
	if res.Agreement < 0.5 {
		t.Errorf("PI/throughput agreement = %.3f, want ≥0.5", res.Agreement)
	}
	if res.LeadWindows < 0 {
		t.Errorf("PI lags throughput by %d windows", -res.LeadWindows)
	}
	// Normalization: both series have geometric mean ≈ 1.
	var logPI, logThr float64
	n := 0
	for _, p := range res.Points {
		if p.PI > 0 && p.Throughput > 0 {
			logPI += math.Log(p.PI)
			logThr += math.Log(p.Throughput)
			n++
		}
	}
	if n > 0 {
		if gm := math.Exp(logPI / float64(n)); gm < 0.8 || gm > 1.25 {
			t.Errorf("normalized PI geometric mean = %v, want ≈1", gm)
		}
		if gm := math.Exp(logThr / float64(n)); gm < 0.8 || gm > 1.25 {
			t.Errorf("normalized throughput geometric mean = %v, want ≈1", gm)
		}
	}
	if res.String() == "" {
		t.Error("empty fig3 rendering")
	}
}

func TestFig4Shape(t *testing.T) {
	l := testLab(t)
	res, err := l.RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("fig4 has %d rows, want 4 workloads × 2 levels", len(res.Rows))
	}
	// HPC metrics must give useful coordinated accuracy on the known and
	// interleaved workloads even at quick scale.
	for _, kind := range []TestKind{TestOrdering, TestBrowsing, TestInterleaved} {
		row := res.Row(kind, metrics.LevelHPC)
		if row == nil {
			t.Fatalf("missing row %s/HPC", kind)
		}
		if row.Overload < 0.65 {
			t.Errorf("fig4a HPC %s = %.3f, want ≥0.65 at quick scale", kind, row.Overload)
		}
	}
	// Averaged over the four workloads, HPC must not lose to OS.
	var osSum, hpcSum float64
	for _, kind := range TestKinds() {
		osSum += res.Row(kind, metrics.LevelOS).Overload
		hpcSum += res.Row(kind, metrics.LevelHPC).Overload
	}
	if hpcSum < osSum-0.05 {
		t.Errorf("mean HPC coordinated accuracy %.3f below OS %.3f", hpcSum/4, osSum/4)
	}
	if res.String() == "" {
		t.Error("empty fig4 rendering")
	}
}

func TestTimingShape(t *testing.T) {
	l := testLab(t)
	res, err := l.RunTiming()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("timing has %d rows, want 4", len(res.Rows))
	}
	svm := res.Row("SVM")
	naive := res.Row("Naive")
	tan := res.Row("TAN")
	if svm == nil || naive == nil || tan == nil {
		t.Fatal("missing learner rows")
	}
	// The paper's cost ordering: SVM training is an order of magnitude
	// beyond the others; Naive is cheapest.
	if svm.Build < 5*naive.Build {
		t.Errorf("SVM build %v not ≫ Naive build %v", svm.Build, naive.Build)
	}
	if svm.Build < tan.Build {
		t.Errorf("SVM build %v not above TAN build %v", svm.Build, tan.Build)
	}
	for _, row := range res.Rows {
		// The paper's online decisions take ≤50 ms; ours must be far
		// below even that.
		if row.Decide.Milliseconds() > 50 {
			t.Errorf("%s decision %v exceeds the paper's 50 ms budget", row.Learner, row.Decide)
		}
	}
	if res.String() == "" {
		t.Error("empty timing rendering")
	}
}

func TestOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed overhead runs are slow")
	}
	l := testLab(t)
	res, err := l.RunOverhead()
	if err != nil {
		t.Fatal(err)
	}
	none, hpc, osRow := res.Row("none"), res.Row("hpc"), res.Row("os")
	if none == nil || hpc == nil || osRow == nil {
		t.Fatal("missing overhead rows")
	}
	hpcLoss := 1 - hpc.RelThroughput
	osLoss := 1 - osRow.RelThroughput
	if osLoss <= hpcLoss {
		t.Errorf("OS collection loss %.3f not above HPC loss %.3f", osLoss, hpcLoss)
	}
	if osLoss <= 0.005 || osLoss > 0.25 {
		t.Errorf("OS collection loss %.3f out of the plausible band", osLoss)
	}
	if hpcLoss > 0.05 {
		t.Errorf("HPC collection loss %.3f too large", hpcLoss)
	}
	if res.String() == "" {
		t.Error("empty overhead rendering")
	}
}

func TestTestTraceKinds(t *testing.T) {
	l := testLab(t)
	for _, kind := range TestKinds() {
		tr, err := l.TestTrace(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(tr.Windows) < 10 {
			t.Errorf("%s test trace has %d windows", kind, len(tr.Windows))
		}
	}
	if _, err := l.TestTrace(TestKind("nope")); err == nil {
		t.Error("unknown test kind not rejected")
	}
	// The interleaved trace must contain both mixes.
	tr, err := l.TestTrace(TestInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	mixes := map[string]bool{}
	for _, w := range tr.Windows {
		mixes[w.Mix] = true
	}
	if !mixes["browsing"] || !mixes["ordering"] {
		t.Errorf("interleaved trace mixes = %v, want both", mixes)
	}
}

func TestSchedulesUseThinkVariation(t *testing.T) {
	w, err := testLab(t).Workload(tpcw.Ordering())
	if err != nil {
		t.Fatal(err)
	}
	sched := TrainingSchedule(w, QuickScale())
	varied := 0
	for _, p := range sched.Phases {
		if p.ThinkScale != 0 && p.ThinkScale != 1 {
			varied++
		}
	}
	if varied < 2 {
		t.Errorf("training schedule has %d think-varied phases, want ≥2", varied)
	}
}

func TestBaselinesShape(t *testing.T) {
	l := testLab(t)
	res, err := l.RunBaselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("baseline rows = %d, want 4 detectors × 4 workloads", len(res.Rows))
	}
	// The coordinated monitor must beat every baseline on mean balanced
	// accuracy — the paper's raison d'être.
	coord := res.MeanBA("coordinated-hpc")
	for _, d := range []string{"pi-threshold", "rt-threshold", "util-threshold"} {
		if ba := res.MeanBA(d); ba >= coord {
			t.Errorf("%s mean BA %.3f not below the coordinated monitor's %.3f", d, ba, coord)
		}
	}
	// The single-PI rule must collapse off its calibration regime
	// ("the single PI metric is not enough", §II.A).
	if row := res.Row("pi-threshold", TestUnknown); row == nil || row.Overload > 0.75 {
		t.Errorf("pi-threshold on unknown input should be weak, got %+v", row)
	}
	// The response-time trigger observes completed requests only, so it
	// fires at least a window late on average (the dead-time effect).
	if lag := res.MeanLag("rt-threshold"); lag < 0.5 {
		t.Errorf("rt-threshold mean lag = %.2f windows, want the dead-time delay", lag)
	}
	if lag := res.MeanLag("coordinated-hpc"); lag > res.MeanLag("rt-threshold") {
		t.Errorf("coordinated lag %.2f not below the RT trigger's %.2f",
			lag, res.MeanLag("rt-threshold"))
	}
	if res.String() == "" {
		t.Error("empty baseline rendering")
	}
}

func TestLevelComparisonShape(t *testing.T) {
	l := testLab(t)
	res, err := l.RunLevelComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("level rows = %d, want 3 levels × 4 workloads", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Overload < 0.4 || row.Overload > 1 {
			t.Errorf("%s/%s BA = %.3f out of plausible range", row.Level, row.Workload, row.Overload)
		}
	}
	if res.String() == "" {
		t.Error("empty level rendering")
	}
}

func TestCombinedLevelVectors(t *testing.T) {
	l := testLab(t)
	tr, err := l.TrainingTrace(tpcw.Browsing())
	if err != nil {
		t.Fatal(err)
	}
	names := tr.Names(metrics.LevelCombined)
	if len(names) != len(tr.OSNames)+len(tr.HPCNames) {
		t.Fatalf("combined names = %d, want %d", len(names), len(tr.OSNames)+len(tr.HPCNames))
	}
	w := tr.Windows[0]
	vecs := w.Vectors(metrics.LevelCombined)
	if len(vecs[server.TierApp]) != len(names) {
		t.Fatalf("combined vector = %d values, want %d", len(vecs[server.TierApp]), len(names))
	}
	// OS part first, HPC part appended.
	if vecs[server.TierApp][0] != w.OS[server.TierApp][0] {
		t.Error("combined vector does not start with the OS vector")
	}
	if vecs[server.TierApp][len(tr.OSNames)] != w.HPC[server.TierApp][0] {
		t.Error("combined vector does not continue with the HPC vector")
	}
}
