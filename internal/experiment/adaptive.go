package experiment

import (
	"fmt"
	"strings"

	"hpcap/internal/core"
	"hpcap/internal/drift"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/registry"
	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

// DriftReplay is the result of one end-to-end adaptive-lifecycle replay:
// a browsing-trained monitor serves a trace whose mix is scripted over to
// ordering mid-run, the drift detectors notice, the registry retrains on
// the labeled history and hot-swaps the winning candidate — all
// synchronously, so the run is a pure function of the lab's seed.
type DriftReplay struct {
	// Log is the golden-pinned transcript: one line per decided window
	// interleaved with the lifecycle events observed while labeling it.
	Log string
	// Windows and FrozenWindows are the decision counts of the adaptive
	// and the frozen (never-swapped) replay of the same recorded trace;
	// a loss-free swap keeps them equal.
	Windows, FrozenWindows int
	// Swaps counts hot-swaps; SwapSeq is the first window the swapped-in
	// model decided (0 if no swap happened).
	Swaps   int
	SwapSeq int64
	// AdaptiveHits / FrozenHits count correct overload verdicts over the
	// post-swap tail of the trace, for the two replays respectively, out
	// of PostSwapWindows windows.
	AdaptiveHits, FrozenHits, PostSwapWindows int
}

// driftReplaySeed offsets the mix-shift trace away from every training and
// test trace seed the lab uses.
const driftReplaySeed = 300

// trainingSetOf converts a labeled trace into a core training set.
func trainingSetOf(name string, tr *Trace, level metrics.Level) core.TrainingSet {
	set := core.TrainingSet{Workload: name}
	for _, w := range tr.Windows {
		set.Windows = append(set.Windows, core.LabeledWindow{
			Observation: core.Observation{Time: w.Time, Vectors: w.Vectors(level)},
			Overload:    w.Overload,
			Bottleneck:  w.Bottleneck,
		})
	}
	return set
}

// RunDriftReplay replays the adaptive model lifecycle end to end at the
// HPC level and returns its transcript. workers bounds the synopsis-build
// fan-out during both initial training and the retrain; the transcript is
// bit-identical for any value — the drift-replay determinism golden pins
// this.
//
// The initial monitor is deliberately trained on the browsing mix alone
// (the lab's shared monitors train on both mixes, which would leave no
// accuracy to lose when the traffic shifts).
func (l *Lab) RunDriftReplay(workers int) (*DriftReplay, error) {
	const level = metrics.LevelHPC
	wb, err := l.Workload(tpcw.Browsing())
	if err != nil {
		return nil, err
	}
	wo, err := l.Workload(tpcw.Ordering())
	if err != nil {
		return nil, err
	}
	btr, err := l.TrainingTrace(tpcw.Browsing())
	if err != nil {
		return nil, err
	}
	names := btr.Names(level)
	trainCfg := core.Config{
		Learner:  bayes.TANLearner(),
		Synopsis: core.DefaultSynopsisConfig(l.Seed),
		Workers:  workers,
	}
	mon, err := core.Train(level, names, []core.TrainingSet{trainingSetOf("browsing", btr, level)}, trainCfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: train initial monitor: %w", err)
	}

	tr, err := Generate(TraceConfig{
		Server:        l.Server,
		Schedule:      MixShiftSchedule(wb, wo, l.Scale),
		Window:        l.Scale.Window,
		Warmup:        l.Scale.WarmupWindows,
		Seed:          l.Seed + driftReplaySeed,
		Labeler:       l.Labeler,
		RecordSeconds: true,
		Topology:      l.Topology,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: generate mix-shift trace: %w", err)
	}

	var vecs [server.NumTiers][][]float64
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		vecs[tier] = tr.SecondVectors(level, tier)
	}
	feed := func(p *serve.Pipeline) {
		for i, ts := range tr.SecTimes {
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				p.Ingest(serve.Sample{Site: "site", Tier: tier, Time: ts, Values: vecs[tier][i]})
			}
		}
		p.Flush()
	}

	// Frozen replay: the browsing-trained monitor serves the whole shifted
	// trace unassisted.
	var frozen []serve.Decision
	pf, err := serve.NewPipeline(mon, serve.Config{
		Window:     l.Scale.Window,
		OnDecision: func(d serve.Decision) { frozen = append(frozen, d) },
	})
	if err != nil {
		return nil, err
	}
	feed(pf)

	// Adaptive replay: the same trace through a managed pipeline, ground
	// truth delivered one window behind the decision stream.
	var log strings.Builder
	var decisions []serve.Decision
	res := &DriftReplay{FrozenWindows: len(frozen)}
	pa, err := serve.NewPipeline(mon, serve.Config{
		Window:     l.Scale.Window,
		OnDecision: func(d serve.Decision) { decisions = append(decisions, d) },
		OnSwap: func(ev serve.SwapEvent) {
			res.Swaps++
			res.SwapSeq = ev.Seq
		},
	})
	if err != nil {
		return nil, err
	}
	mgr, err := registry.NewManager(registry.Config{
		Pipeline: pa,
		Initial:  mon,
		Names:    names,
		Train: core.Config{
			Learner:  bayes.TANLearner(),
			Synopsis: core.DefaultSynopsisConfig(l.Seed + 1),
			Workers:  workers,
		},
		// Replay-tight thresholds: the scripted shift is unambiguous, so
		// the detectors may react far faster than the daemon defaults.
		Drift: drift.Config{
			PHDelta:       0.02,
			PHLambda:      4,
			MinWindows:    6,
			MixRefWindows: 6,
			MixWindow:     8,
			MixThreshold:  0.08,
			MixPatience:   3,
		},
		HistoryWindows:  64,
		MinTrainWindows: 32,
		ShadowWindows:   8,
		// One retrain decides the replay; the cooldown outlasts the trace.
		CooldownWindows: 10 * len(tr.Windows),
		SwapMargin:      -1,
		OnEvent: func(e registry.Event) {
			fmt.Fprintf(&log, "  %s\n", e)
		},
	})
	if err != nil {
		return nil, err
	}

	fed := 0
	deliver := func(upto int) {
		for ; fed < upto; fed++ {
			d := decisions[fed]
			w := tr.Windows[fed]
			fmt.Fprintf(&log, "window seq=%d mix=%s predicted=%t truth=%t version=%d\n",
				d.Seq, w.Mix, d.Prediction.Overload, w.Overload == 1, d.ModelVersion)
			mgr.HandleDecision(d)
			mgr.ObserveTruth(d.Site, d.Seq, registry.Truth{
				Overload:    w.Overload == 1,
				Bottleneck:  w.Bottleneck,
				Throughput:  w.Throughput,
				ClassCounts: w.Classes,
			})
		}
	}
	for i, ts := range tr.SecTimes {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			pa.Ingest(serve.Sample{Site: "site", Tier: tier, Time: ts, Values: vecs[tier][i]})
		}
		deliver(len(decisions) - 1)
	}
	pa.Flush()
	deliver(len(decisions))
	res.Windows = len(decisions)

	if res.Swaps > 0 {
		for i, d := range decisions {
			if d.Seq < res.SwapSeq || i >= len(frozen) {
				continue
			}
			truth := tr.Windows[i].Overload == 1
			res.PostSwapWindows++
			if d.Prediction.Overload == truth {
				res.AdaptiveHits++
			}
			if frozen[i].Prediction.Overload == truth {
				res.FrozenHits++
			}
		}
	}
	fmt.Fprintf(&log, "replay windows=%d frozen=%d swaps=%d swap_seq=%d post_swap_windows=%d adaptive_hits=%d frozen_hits=%d\n",
		res.Windows, res.FrozenWindows, res.Swaps, res.SwapSeq,
		res.PostSwapWindows, res.AdaptiveHits, res.FrozenHits)
	res.Log = log.String()
	return res, nil
}
