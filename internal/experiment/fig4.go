package experiment

import (
	"context"
	"fmt"
	"strings"

	"hpcap/internal/core"
	"hpcap/internal/metrics"
	"hpcap/internal/ml"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/parallel"
	"hpcap/internal/predictor"
)

// Fig4Row is the coordinated predictor's accuracy on one test workload at
// one metric level.
type Fig4Row struct {
	Workload   TestKind
	Level      metrics.Level
	Overload   float64 // balanced accuracy of overload prediction (Fig 4a)
	Bottleneck float64 // bottleneck identification accuracy (Fig 4b)
}

// Fig4Result reproduces the paper's Figure 4: coordinated overload
// prediction and bottleneck identification accuracy over the four test
// workloads, for OS-level and hardware-counter-level metrics.
type Fig4Result struct {
	Config predictor.Config
	Rows   []Fig4Row
}

// TrainMonitor assembles the paper's coordinated system at one metric
// level: TAN synopses per (training mix × tier), a coordinated predictor
// with the given configuration, trained on the training traces. Monitors
// are trained once per (level, config, learner) and cached; the shared
// instance is safe for concurrent prediction through per-caller sessions
// (core.Monitor.NewSession). Callers that adapt a monitor online with
// Feedback should train a private one via core.Train instead.
func (l *Lab) TrainMonitor(level metrics.Level, coordCfg predictor.Config) (*core.Monitor, error) {
	return l.TrainMonitorWith(level, coordCfg, bayes.TANLearner())
}

// TrainMonitorWith is TrainMonitor with an explicit synopsis learner.
func (l *Lab) TrainMonitorWith(level metrics.Level, coordCfg predictor.Config, learner ml.Learner) (*core.Monitor, error) {
	return l.monitor(level, coordCfg, learner)
}

// trainMonitor performs the actual (uncached) monitor training.
func (l *Lab) trainMonitor(level metrics.Level, coordCfg predictor.Config, learner ml.Learner) (*core.Monitor, error) {
	var sets []core.TrainingSet
	var names []string
	for _, mix := range TrainingMixes() {
		tr, err := l.TrainingTrace(mix)
		if err != nil {
			return nil, err
		}
		names = tr.Names(level)
		set := core.TrainingSet{Workload: mix.Name}
		for _, w := range tr.Windows {
			set.Windows = append(set.Windows, core.LabeledWindow{
				Observation: core.Observation{Time: w.Time, Vectors: w.Vectors(level)},
				Overload:    w.Overload,
				Bottleneck:  w.Bottleneck,
			})
		}
		sets = append(sets, set)
	}
	return core.Train(level, names, sets, core.Config{
		Learner:     learner,
		Synopsis:    core.DefaultSynopsisConfig(l.Seed),
		Coordinator: coordCfg,
	})
}

// EvaluateMonitor runs a trained monitor over a test trace and returns the
// overload balanced accuracy and the bottleneck identification accuracy.
// Bottleneck accuracy is measured over truly overloaded windows: the
// predictor must both flag the overload and name the busier tier. The
// evaluation replays through a private session, so any number of
// evaluations may share one monitor concurrently without perturbing each
// other's temporal history.
func EvaluateMonitor(m *core.Monitor, test *Trace) (overloadBA, bottleneckAcc float64, err error) {
	sess := m.NewSession()
	var conf ml.Confusion
	var overWindows, bottRight int
	for _, w := range test.Windows {
		p, err := sess.Predict(core.Observation{Time: w.Time, Vectors: w.Vectors(m.Level)})
		if err != nil {
			return 0, 0, err
		}
		pred := 0
		if p.Overload {
			pred = 1
		}
		conf.Add(w.Overload, pred)
		if w.Overload == 1 {
			overWindows++
			if p.Overload && p.Bottleneck == w.Bottleneck {
				bottRight++
			}
		}
	}
	bott := 0.0
	if overWindows > 0 {
		bott = float64(bottRight) / float64(overWindows)
	}
	return conf.BalancedAccuracy(), bott, nil
}

// RunFig4 reproduces Figures 4(a) and 4(b) with the paper's configuration:
// TAN synopses, 3 history bits, δ=5, optimistic scheme.
func (l *Lab) RunFig4() (*Fig4Result, error) {
	return l.RunFig4With(predictor.Config{HistoryBits: 3, Delta: 5, Scheme: predictor.Optimistic})
}

// RunFig4With runs the Figure 4 grid under a custom coordinator
// configuration (used by the ablation). The (level × workload) cells fan
// out across the Lab's workers; rows are assembled in the sequential
// order, and every cell's inputs are cached once-guarded, so the result is
// identical to a sequential run.
func (l *Lab) RunFig4With(cfg predictor.Config) (*Fig4Result, error) {
	type spec struct {
		level metrics.Level
		kind  TestKind
	}
	var specs []spec
	for _, level := range []metrics.Level{metrics.LevelOS, metrics.LevelHPC} {
		for _, kind := range TestKinds() {
			specs = append(specs, spec{level, kind})
		}
	}
	rows, err := parallel.Map(context.Background(), len(specs), l.workers(), func(i int) (Fig4Row, error) {
		sp := specs[i]
		monitor, err := l.TrainMonitor(sp.level, cfg)
		if err != nil {
			return Fig4Row{}, fmt.Errorf("experiment: train %s monitor: %w", sp.level, err)
		}
		test, err := l.TestTrace(sp.kind)
		if err != nil {
			return Fig4Row{}, err
		}
		over, bott, err := EvaluateMonitor(monitor, test)
		if err != nil {
			return Fig4Row{}, err
		}
		return Fig4Row{
			Workload:   sp.kind,
			Level:      sp.level,
			Overload:   over,
			Bottleneck: bott,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Config: cfg, Rows: rows}, nil
}

// Row returns the row for (workload, level), or nil.
func (r *Fig4Result) Row(kind TestKind, level metrics.Level) *Fig4Row {
	for i := range r.Rows {
		if r.Rows[i].Workload == kind && r.Rows[i].Level == level {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders both panels of Figure 4.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4 — coordinated prediction (h=%d, δ=%d, %s)\n",
		r.Config.HistoryBits, r.Config.Delta, r.Config.Scheme)
	fmt.Fprintf(&b, "%-12s | %-22s | %-22s\n", "", "(a) overload BA %", "(b) bottleneck acc %")
	fmt.Fprintf(&b, "%-12s | %-10s %-10s | %-10s %-10s\n", "workload", "OS", "HPC", "OS", "HPC")
	for _, kind := range TestKinds() {
		osRow := r.Row(kind, metrics.LevelOS)
		hpcRow := r.Row(kind, metrics.LevelHPC)
		if osRow == nil || hpcRow == nil {
			continue
		}
		fmt.Fprintf(&b, "%-12s | %-10.1f %-10.1f | %-10.1f %-10.1f\n",
			kind, osRow.Overload*100, hpcRow.Overload*100,
			osRow.Bottleneck*100, hpcRow.Bottleneck*100)
	}
	return b.String()
}
