package experiment

import (
	"context"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/metrics"
	"hpcap/internal/predictor"
)

// benchLab returns a prewarmed QuickScale lab so the Table I benchmarks
// time the experiment grid itself (32 synopsis builds + evaluations per
// run), not the one-off trace generation.
func benchLab(b *testing.B, workers int) *Lab {
	b.Helper()
	l := NewLab(QuickScale())
	l.Workers = workers
	if err := l.Prewarm(context.Background()); err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkLabTable1Sequential is the Workers=1 baseline for the parallel
// fan-out: the 32-cell Table I(a) grid built strictly one cell at a time.
func BenchmarkLabTable1Sequential(b *testing.B) {
	l := benchLab(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.RunTable1(TestBrowsing); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLabTable1Parallel runs the same grid with the default
// (GOMAXPROCS) worker bound. Output is byte-identical to the sequential
// run — the determinism golden test enforces that — so the two benchmarks
// differ only in scheduling.
func BenchmarkLabTable1Parallel(b *testing.B) {
	l := benchLab(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.RunTable1(TestBrowsing); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorPredictParallel hammers one shared trained monitor from
// concurrent goroutines, each predicting through its own session — the
// online serving shape: one trained system, many inference streams.
func BenchmarkMonitorPredictParallel(b *testing.B) {
	l := benchLab(b, 0)
	m, err := l.TrainMonitor(metrics.LevelHPC, predictor.Config{})
	if err != nil {
		b.Fatal(err)
	}
	test, err := l.TestTrace(TestOrdering)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]core.Observation, len(test.Windows))
	for i, w := range test.Windows {
		obs[i] = core.Observation{Time: w.Time, Vectors: w.Vectors(m.Level)}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := m.NewSession()
		i := 0
		for pb.Next() {
			if _, err := sess.Predict(obs[i%len(obs)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
