package experiment

import (
	"fmt"
	"strings"
	"time"

	"hpcap/internal/metrics"
	"hpcap/internal/ml"
	"hpcap/internal/server"
	"hpcap/internal/synopsis"
	"hpcap/internal/tpcw"
)

// TimingRow is one learner's measured cost (§V.B): the wall time to build a
// synopsis from the training set and to make a single online decision. The
// paper reports 90 ms (LR), 10 ms (Naive), 1710 ms (SVM) and 50 ms (TAN) on
// 2006 hardware; on modern hardware the absolute numbers shrink but the
// ordering — SVM far slower than the rest, Naive cheapest — must hold.
type TimingRow struct {
	Learner string
	Build   time.Duration
	Decide  time.Duration
}

// TimingResult reproduces the learner cost comparison of §V.B.
type TimingResult struct {
	TrainingInstances int
	Rows              []TimingRow
}

// RunTiming measures synopsis build and single-decision wall time for each
// learner on the ordering-mix training set (app tier, HPC level — the
// bottleneck-tier synopsis the online system exercises most).
func (l *Lab) RunTiming() (*TimingResult, error) {
	tr, err := l.TrainingTrace(tpcw.Ordering())
	if err != nil {
		return nil, err
	}
	d, err := Dataset(tr, server.TierApp, metrics.LevelHPC)
	if err != nil {
		return nil, err
	}
	res := &TimingResult{TrainingInstances: d.Len()}
	for _, learner := range Learners() {
		row, err := timeLearner(learner, d, l.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiment: timing %s: %w", learner.Name, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// timeLearner measures one learner, repeating short operations enough times
// for a stable reading.
func timeLearner(learner ml.Learner, d *ml.Dataset, seed int64) (TimingRow, error) {
	// Build: attribute selection plus model fitting, as the online system
	// performs it.
	start := time.Now()
	syn, err := synopsis.Build("timing", server.TierApp, metrics.LevelHPC, learner, d,
		synopsis.Config{Selection: selection(seed)})
	if err != nil {
		return TimingRow{}, err
	}
	build := time.Since(start)

	// Decide: median-ish estimate over repeated single decisions.
	probe := d.Row(d.Len() / 2)
	const reps = 2000
	start = time.Now()
	for i := 0; i < reps; i++ {
		syn.Predict(probe)
	}
	decide := time.Since(start) / reps

	return TimingRow{Learner: learner.Name, Build: build, Decide: decide}, nil
}

// Row returns the row for a learner, or nil.
func (r *TimingResult) Row(learner string) *TimingRow {
	for i := range r.Rows {
		if r.Rows[i].Learner == learner {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the timing table.
func (r *TimingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Learner cost (§V.B) — %d training instances\n", r.TrainingInstances)
	fmt.Fprintf(&b, "%-8s %14s %14s\n", "learner", "build", "single decide")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %14s %14s\n", row.Learner, row.Build, row.Decide)
	}
	return b.String()
}
