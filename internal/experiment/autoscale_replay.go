package experiment

import (
	"fmt"
	"strings"

	"hpcap/internal/core"
	"hpcap/internal/cpu"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/registry"
	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

// AutoscaleReplay is the result of the closed-loop capacity experiment: a
// flash crowd slams a DAG-topology site twice under identical seeds, once
// protected only by the admission valve (shedding load) and once with the
// registry's Autoscaler additionally growing the bottleneck pool through
// the live testbed. Scaling serves strictly more requests than shedding —
// the measurement layer is the same, only the actuator differs. The
// transcript is a pure function of the lab's seed, bit-identical for any
// training worker count and any shard count.
type AutoscaleReplay struct {
	// Log is the golden-pinned transcript of both arms.
	Log string
	// AdmissionServed and AutoscaleServed are the completed-request totals
	// of the valve-only and the valve+autoscaler arm.
	AdmissionServed, AutoscaleServed int
	// Ups and Downs are the autoscaler's lifetime action counts.
	Ups, Downs uint64
}

// autoscaleReplaySeed offsets the autoscale trace away from every other
// seed the lab derives (training 0/1, test 100s, interleave 104, drift
// 300, chaos 400, fusion 500).
const autoscaleReplaySeed = 600

// autoscaleSchedule composes the flash-crowd scenario: a healthy lead-in
// below the knee, a geometric flash crowd cresting at more than twice the
// single-replica knee, and a quiet recovery tail in which the autoscaler
// can drain what it grew.
func autoscaleSchedule(w Workload, s Scale) tpcw.Schedule {
	win := float64(s.Window)
	return tpcw.Concat(
		tpcw.Steady(w.Mix, frac(w.Knee, 0.75), 4*win),
		tpcw.FlashCrowd(w.Mix, frac(w.Knee, 0.75), frac(w.Knee, 2.2),
			4*win, 5*win, 2*win, 6),
		tpcw.Steady(w.Mix, frac(w.Knee, 0.55), 6*win),
	)
}

// autoscaleTopology widens the degenerate two-tier DAG so both pools have
// headroom to grow: one replica each to start, the app pool up to six and
// the store up to four. The autoscaler, not the topology, decides which
// pool the flash crowd actually bottlenecks.
func autoscaleTopology(cfg server.Config) server.TopologyConfig {
	topo := server.TwoTierTopology(cfg)
	topo.Pools[0].MinReplicas = 1
	topo.Pools[0].MaxReplicas = 6
	topo.Pools[1].MinReplicas = 1
	topo.Pools[1].MaxReplicas = 4
	return topo
}

// testbedScaler adapts the single-site DAG testbed to the registry's
// site-aware Scaler surface.
type testbedScaler struct{ tb *server.DAGTestbed }

func (s testbedScaler) AddReplica(_, pool string) (int, bool)    { return s.tb.AddReplica(pool) }
func (s testbedScaler) RemoveReplica(_, pool string) (int, bool) { return s.tb.RemoveReplica(pool) }

// scaleServePipeline is the serving surface the closed loop drives,
// satisfied by both the unsharded and the sharded pipeline.
type scaleServePipeline interface {
	Ingest(serve.Sample)
	Flush()
	SiteStats(string) (serve.SiteStats, bool)
	NoteScale(string, server.TierID, int, bool)
	AdmissionValve(string, int) server.AdmissionFunc
}

// RunAutoscaleReplay runs the flash-crowd autoscaling experiment through
// the unsharded pipeline. workers bounds the training fan-out only; the
// transcript is bit-identical for any value.
func (l *Lab) RunAutoscaleReplay(workers int) (*AutoscaleReplay, error) {
	return l.runAutoscaleReplay(workers, 0)
}

// RunAutoscaleReplaySharded runs the same experiment through the sharded
// serving pipeline; the transcript is byte-identical to the unsharded
// run's for any shard count.
func (l *Lab) RunAutoscaleReplaySharded(workers, shards int) (*AutoscaleReplay, error) {
	if shards < 1 {
		shards = 1
	}
	return l.runAutoscaleReplay(workers, shards)
}

// runAutoscaleReplay is the shared body; shards == 0 selects the
// unsharded pipeline.
func (l *Lab) runAutoscaleReplay(workers, shards int) (*AutoscaleReplay, error) {
	const level = metrics.LevelHPC
	const site = "site"
	const valveBound = 4
	wb, err := l.Workload(tpcw.Browsing())
	if err != nil {
		return nil, err
	}
	btr, err := l.TrainingTrace(tpcw.Browsing())
	if err != nil {
		return nil, err
	}
	names := btr.Names(level)
	mon, err := core.Train(level, names, []core.TrainingSet{trainingSetOf("browsing", btr, level)}, core.Config{
		Learner:  bayes.TANLearner(),
		Synopsis: core.DefaultSynopsisConfig(l.Seed),
		Workers:  workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: train autoscale monitor: %w", err)
	}

	topo := autoscaleTopology(l.Server)
	topo.Seed = l.Seed + autoscaleReplaySeed
	sched := autoscaleSchedule(wb, l.Scale)
	slotOf := make(map[string]server.TierID, len(topo.Pools))
	for _, pc := range topo.Pools {
		slotOf[pc.Name] = pc.Slot
	}

	var log strings.Builder
	fmt.Fprintf(&log, "topology pools=%d entry=%s app_max=%d peak_ebs=%d\n",
		len(topo.Pools), topo.Entry, topo.Pools[0].MaxReplicas, frac(wb.FlashKnee, 1.8))

	// arm runs the whole schedule once on a fresh, identically seeded
	// testbed and pipeline; scaling additionally closes the replica loop.
	arm := func(name string, scaling bool) (served int, ups, downs uint64, err error) {
		tb, err := server.NewDAGTestbed(topo, sched)
		if err != nil {
			return 0, 0, 0, err
		}
		machines := [server.NumTiers]server.MachineConfig{l.Server.App.Machine, l.Server.DB.Machine}
		for _, pc := range topo.Pools {
			machines[pc.Slot] = pc.Tier.Machine
		}
		var coll [server.NumTiers]*cpu.Collector
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			coll[tier] = cpu.NewCollector(tier, machines[tier], hpcNoise,
				topo.Seed*10+int64(tier)+100)
		}

		var decisions []serve.Decision
		scfg := serve.Config{
			Window:     l.Scale.Window,
			OnDecision: func(d serve.Decision) { decisions = append(decisions, d) },
			PoolLabels: [server.NumTiers]string{topo.Pools[0].Name, topo.Pools[1].Name},
		}
		var p scaleServePipeline
		sync := func() {}
		if shards > 0 {
			sp, err := serve.NewShardedPipeline(mon, scfg, serve.ShardConfig{Shards: shards})
			if err != nil {
				return 0, 0, 0, err
			}
			defer sp.Close()
			p, sync = sp, sp.Sync
		} else {
			up, err := serve.NewPipeline(mon, scfg)
			if err != nil {
				return 0, 0, 0, err
			}
			p = up
		}

		var as *registry.Autoscaler
		if scaling {
			acfg := registry.DefaultAutoscalerConfig()
			acfg.Scaler = testbedScaler{tb}
			// The admission valve sheds load the moment a verdict lands, so
			// consecutive overload windows rarely happen — one verdict must
			// arm the scaler. The ratio gates are tuned to window-averaged
			// CPU ratios: this overload regime is queue-bound, so the
			// bottleneck's CPU sits well below 1 even as RT explodes.
			acfg.UpWindows = 1
			acfg.DownWindows = 4
			acfg.CooldownWindows = 2
			acfg.UpRatio = 0.3
			acfg.DownRatio = 0.15
			acfg.OnScale = func(e registry.ScaleEvent) {
				p.NoteScale(e.Site, slotOf[e.Pool], e.Replicas, e.Up)
				fmt.Fprintf(&log, "  %s\n", e)
			}
			as, err = registry.NewAutoscaler(acfg)
			if err != nil {
				return 0, 0, 0, err
			}
		}

		// Both arms shed through the valve; the scaling arm also grows
		// the bottleneck pool, relieving the valve instead of starving
		// behind it.
		tb.SetAdmission(p.AdmissionValve(site, valveBound))
		if err := tb.Start(); err != nil {
			return 0, 0, 0, err
		}

		fmt.Fprintf(&log, "arm %s\n", name)
		total := sched.Duration()
		fed := 0
		var rejected int
		// Pool ratios averaged over the decision window: the 1-second
		// loads are too noisy to gate scaling decisions on.
		rsum := make([]float64, len(topo.Pools))
		rsecs := 0
		for elapsed := 0.0; elapsed < total; elapsed++ {
			snap := tb.RunIntervalLegacy(1)
			served += snap.Completions
			rejected += snap.Rejections
			for i, pl := range tb.PoolLoads() {
				rsum[i] += pl.Ratio()
			}
			rsecs++
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				vec := coll[tier].Collect(snap, 1)
				// The sharded pipeline queues samples; hand it an owned copy.
				p.Ingest(serve.Sample{Site: site, Tier: tier, Time: snap.Time,
					Values: append([]float64(nil), vec...)})
			}
			sync()
			// Decisions land between simulated seconds, so every replica
			// change takes effect at the same engine time in every mode.
			for ; fed < len(decisions); fed++ {
				d := decisions[fed]
				loads := tb.PoolLoads()
				for i := range loads {
					loads[i].Offered = rsum[i] / float64(rsecs) * loads[i].Capacity
					rsum[i] = 0
				}
				rsecs = 0
				fmt.Fprintf(&log, "window seq=%d predicted=%t app=%.3f/%d db=%.3f/%d\n",
					d.Seq, d.Prediction.Overload,
					loads[0].Ratio(), loads[0].Replicas, loads[1].Ratio(), loads[1].Replicas)
				if as != nil {
					as.Observe(d, loads)
				}
			}
		}
		p.Flush()
		for ; fed < len(decisions); fed++ {
			d := decisions[fed]
			fmt.Fprintf(&log, "window seq=%d predicted=%t flushed\n", d.Seq, d.Prediction.Overload)
		}

		stats, _ := p.SiteStats(site)
		if as != nil {
			ups, downs = as.Actions()
		}
		fmt.Fprintf(&log, "arm %s served=%d rejected=%d decided=%d ups=%d downs=%d app_replicas=%d\n",
			name, served, rejected, stats.WindowsDecided, stats.ScaleUps, stats.ScaleDowns,
			tb.Replicas(topo.Pools[0].Name))
		return served, ups, downs, nil
	}

	admServed, _, _, err := arm("admission", false)
	if err != nil {
		return nil, err
	}
	autoServed, ups, downs, err := arm("autoscale", true)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&log, "served admission=%d autoscale=%d\n", admServed, autoServed)

	return &AutoscaleReplay{
		Log:             log.String(),
		AdmissionServed: admServed,
		AutoscaleServed: autoServed,
		Ups:             ups,
		Downs:           downs,
	}, nil
}
