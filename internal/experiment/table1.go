package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hpcap/internal/featsel"
	"hpcap/internal/metrics"
	"hpcap/internal/ml"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/ml/linreg"
	"hpcap/internal/ml/svm"
	"hpcap/internal/parallel"
	"hpcap/internal/server"
	"hpcap/internal/synopsis"
	"hpcap/internal/tpcw"
)

// Learners returns the four synopsis builders in the paper's column order:
// LR, Naive, SVM, TAN.
func Learners() []ml.Learner {
	return []ml.Learner{
		linreg.Learner(),
		bayes.NaiveLearner(),
		svm.Learner(),
		bayes.TANLearner(),
	}
}

// Table1Cell is one accuracy cell: a synopsis trained on (workload, tier,
// level) with one learner, evaluated on the test input.
type Table1Cell struct {
	Workload string
	Tier     server.TierID
	Level    metrics.Level
	Learner  string
	BA       float64
}

// Table1Result reproduces one half of the paper's Table I: the balanced
// accuracy of every individual synopsis on one test mix.
type Table1Result struct {
	TestInput string
	Cells     []Table1Cell
}

// Dataset converts one tier/level slice of a trace into an ml.Dataset.
func Dataset(tr *Trace, tier server.TierID, level metrics.Level) (*ml.Dataset, error) {
	d := ml.NewDataset(tr.Names(level))
	for _, w := range tr.Windows {
		if err := d.Add(w.Vectors(level)[tier], w.Overload); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// BuildSynopsis builds one synopsis from a training trace.
func (l *Lab) BuildSynopsis(mix tpcw.Mix, tier server.TierID, level metrics.Level,
	learner ml.Learner) (*synopsis.Synopsis, error) {
	tr, err := l.TrainingTrace(mix)
	if err != nil {
		return nil, err
	}
	d, err := Dataset(tr, tier, level)
	if err != nil {
		return nil, err
	}
	return synopsis.Build(mix.Name, tier, level, learner, d,
		synopsis.Config{Selection: selection(l.Seed)})
}

// EvaluateSynopsis scores a synopsis on a test trace.
func EvaluateSynopsis(syn *synopsis.Synopsis, test *Trace) float64 {
	var conf ml.Confusion
	for _, w := range test.Windows {
		conf.Add(w.Overload, syn.Predict(w.Vectors(syn.Level)[syn.Tier]))
	}
	return conf.BalancedAccuracy()
}

// RunTable1 reproduces Table I(a) (testKind = browsing) or I(b)
// (testKind = ordering): every (training workload × tier × level × learner)
// synopsis evaluated on the test input. The 32 cells are independent given
// the cached traces, so they fan out across the Lab's workers; cells are
// assembled in the sequential loop order, making the result byte-identical
// to a Workers=1 run.
func (l *Lab) RunTable1(testKind TestKind) (*Table1Result, error) {
	test, err := l.TestTrace(testKind)
	if err != nil {
		return nil, err
	}
	type spec struct {
		mix     tpcw.Mix
		tier    server.TierID
		level   metrics.Level
		learner ml.Learner
	}
	var specs []spec
	for _, mix := range TrainingMixes() {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			for _, level := range []metrics.Level{metrics.LevelOS, metrics.LevelHPC} {
				for _, learner := range Learners() {
					specs = append(specs, spec{mix, tier, level, learner})
				}
			}
		}
	}
	cells, err := parallel.Map(context.Background(), len(specs), l.workers(), func(i int) (Table1Cell, error) {
		sp := specs[i]
		syn, err := l.BuildSynopsis(sp.mix, sp.tier, sp.level, sp.learner)
		if err != nil {
			return Table1Cell{}, fmt.Errorf("experiment: table1 %s/%s/%s/%s: %w",
				sp.mix.Name, sp.tier, sp.level, sp.learner.Name, err)
		}
		return Table1Cell{
			Workload: sp.mix.Name,
			Tier:     sp.tier,
			Level:    sp.level,
			Learner:  sp.learner.Name,
			BA:       EvaluateSynopsis(syn, test),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table1Result{TestInput: string(testKind), Cells: cells}, nil
}

// Cell returns the accuracy of one cell, or -1 if absent.
func (r *Table1Result) Cell(workload string, tier server.TierID, level metrics.Level, learner string) float64 {
	for _, c := range r.Cells {
		if c.Workload == workload && c.Tier == tier && c.Level == level && c.Learner == learner {
			return c.BA
		}
	}
	return -1
}

// String formats the result like the paper's Table I.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Prediction accuracy of individual synopses — %s mix input\n", r.TestInput)
	fmt.Fprintf(&b, "%-10s %-5s | %-7s %-7s %-7s %-7s | %-7s %-7s %-7s %-7s\n",
		"Workload", "Tier", "OS:LR", "Naive", "SVM", "TAN", "HPC:LR", "Naive", "SVM", "TAN")
	type rowKey struct {
		workload string
		tier     server.TierID
	}
	rows := map[rowKey]map[string]float64{}
	var order []rowKey
	for _, c := range r.Cells {
		k := rowKey{c.Workload, c.Tier}
		if rows[k] == nil {
			rows[k] = map[string]float64{}
			order = append(order, k)
		}
		rows[k][c.Level.String()+c.Learner] = c.BA
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].workload != order[j].workload {
			return order[i].workload > order[j].workload // ordering first, as in the paper
		}
		return order[i].tier < order[j].tier
	})
	for _, k := range order {
		m := rows[k]
		fmt.Fprintf(&b, "%-10s %-5s | %-7.3f %-7.3f %-7.3f %-7.3f | %-7.3f %-7.3f %-7.3f %-7.3f\n",
			k.workload, k.tier,
			m["OSLR"], m["OSNaive"], m["OSSVM"], m["OSTAN"],
			m["HPCLR"], m["HPCNaive"], m["HPCSVM"], m["HPCTAN"])
	}
	return b.String()
}

// selection returns the standard attribute-selection config.
func selection(seed int64) featsel.Config {
	return featsel.Config{Seed: seed}
}
