package experiment

import (
	"context"
	"fmt"
	"strings"

	"hpcap/internal/baseline"
	"hpcap/internal/core"
	"hpcap/internal/metrics"
	"hpcap/internal/parallel"
	"hpcap/internal/pi"
	"hpcap/internal/predictor"
	"hpcap/internal/server"
)

// BaselineRow is one detector's performance on one test workload.
type BaselineRow struct {
	Detector string
	Workload TestKind
	Overload float64 // balanced accuracy
	Lag      float64 // mean detection lag at sustained onsets, windows
	Onsets   int
}

// BaselineResult compares the conventional overload detectors the paper
// argues against (single-PI threshold, response-time threshold,
// utilization threshold) with the coordinated hardware-counter monitor.
type BaselineResult struct {
	Rows []BaselineRow
}

// RunBaselines evaluates each baseline detector and the coordinated HPC
// monitor on the four test workloads, reporting balanced accuracy and
// detection lag at overload onsets. The PI threshold is calibrated
// offline, per tier, on the training traces, and the better tier is
// reported — the strongest version of the single-PI rule. The per-tier
// calibrations and the per-workload evaluations each fan out across the
// Lab's workers; the coordinated monitor is shared and each evaluation
// replays through a private session, so rows match a sequential run.
func (l *Lab) RunBaselines() (*BaselineResult, error) {
	// Calibrate PI thresholds per tier on the concatenated training data.
	type calibration struct {
		def pi.Definition
		th  *baseline.PIThreshold
	}
	cals, err := parallel.Map(context.Background(), int(server.NumTiers), l.workers(), func(t int) (calibration, error) {
		tier := server.TierID(t)
		var series []float64
		var labels []int
		var def pi.Definition
		for _, mix := range TrainingMixes() {
			tr, err := l.TrainingTrace(mix)
			if err != nil {
				return calibration{}, err
			}
			sel, err := pi.Select(pi.DefaultCandidates(), tr.HPCNames, tr.HPCSamples[tier])
			if err != nil {
				return calibration{}, err
			}
			def = sel.Definition
			s, err := pi.Series(sel.Definition, tr.HPCNames, tr.HPCSamples[tier])
			if err != nil {
				return calibration{}, err
			}
			series = append(series, s...)
			for _, w := range tr.Windows {
				labels = append(labels, w.Overload)
			}
		}
		th, err := baseline.CalibratePIThreshold(series, labels)
		if err != nil {
			return calibration{}, fmt.Errorf("experiment: calibrate PI threshold (%s): %w", tier, err)
		}
		return calibration{def, th}, nil
	})
	if err != nil {
		return nil, err
	}

	monitor, err := l.TrainMonitor(metrics.LevelHPC, predictor.Config{})
	if err != nil {
		return nil, err
	}

	kinds := TestKinds()
	rowGroups, err := parallel.Map(context.Background(), len(kinds), l.workers(), func(k int) ([]BaselineRow, error) {
		kind := kinds[k]
		test, err := l.TestTrace(kind)
		if err != nil {
			return nil, err
		}
		truth := make([]int, len(test.Windows))
		for i, w := range test.Windows {
			truth[i] = w.Overload
		}
		var rows []BaselineRow

		// Single-PI thresholds, one per tier; report the better tier.
		bestPI := BaselineRow{Detector: "pi-threshold", Workload: kind, Overload: -1}
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			series, err := pi.Series(cals[tier].def, test.HPCNames, test.HPCSamples[tier])
			if err != nil {
				return nil, err
			}
			preds := make([]int, len(series))
			for i, v := range series {
				preds[i] = cals[tier].th.Predict(v)
			}
			row := scoreRow("pi-threshold", kind, truth, preds)
			if row.Overload > bestPI.Overload {
				bestPI = row
			}
		}
		rows = append(rows, bestPI)

		// Response-time trigger at the conservative half-SLA setting.
		rt := &baseline.RTDetector{Threshold: 0.5}
		rt.Reset()
		preds := make([]int, len(test.Windows))
		for i, w := range test.Windows {
			preds[i] = rt.Predict(w.MeanRT)
		}
		rows = append(rows, scoreRow("rt-threshold", kind, truth, preds))

		// Utilization trigger on the busier tier's total utilization.
		util := &baseline.UtilDetector{}
		for i, w := range test.Windows {
			u := w.Util[server.TierApp]
			if w.Util[server.TierDB] > u {
				u = w.Util[server.TierDB]
			}
			preds[i] = util.Predict(u)
		}
		rows = append(rows, scoreRow("util-threshold", kind, truth, preds))

		// The coordinated hardware-counter monitor, through a private
		// session so concurrent workloads don't share a history stream.
		sess := monitor.NewSession()
		for i, w := range test.Windows {
			p, err := sess.Predict(core.Observation{Time: w.Time, Vectors: w.HPC})
			if err != nil {
				return nil, err
			}
			preds[i] = 0
			if p.Overload {
				preds[i] = 1
			}
		}
		rows = append(rows, scoreRow("coordinated-hpc", kind, truth, preds))
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	res := &BaselineResult{}
	for _, rows := range rowGroups {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// scoreRow computes balanced accuracy and detection lag for one detector.
func scoreRow(name string, kind TestKind, truth, preds []int) BaselineRow {
	var tp, tn, pos, neg int
	for i := range truth {
		if truth[i] == 1 {
			pos++
			if preds[i] == 1 {
				tp++
			}
		} else {
			neg++
			if preds[i] == 0 {
				tn++
			}
		}
	}
	ba := 0.0
	switch {
	case pos == 0 && neg == 0:
	case pos == 0:
		ba = float64(tn) / float64(neg)
	case neg == 0:
		ba = float64(tp) / float64(pos)
	default:
		ba = (float64(tp)/float64(pos) + float64(tn)/float64(neg)) / 2
	}
	lag, onsets := baseline.DetectionLag(truth, preds)
	return BaselineRow{Detector: name, Workload: kind, Overload: ba, Lag: lag, Onsets: onsets}
}

// Row returns the row for (detector, workload), or nil.
func (r *BaselineResult) Row(detector string, kind TestKind) *BaselineRow {
	for i := range r.Rows {
		if r.Rows[i].Detector == detector && r.Rows[i].Workload == kind {
			return &r.Rows[i]
		}
	}
	return nil
}

// MeanBA averages one detector's balanced accuracy over the four test
// workloads.
func (r *BaselineResult) MeanBA(detector string) float64 {
	var sum float64
	n := 0
	for _, row := range r.Rows {
		if row.Detector == detector {
			sum += row.Overload
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanLag averages one detector's detection lag over workloads with at
// least one onset.
func (r *BaselineResult) MeanLag(detector string) float64 {
	var sum float64
	n := 0
	for _, row := range r.Rows {
		if row.Detector == detector && row.Onsets > 0 {
			sum += row.Lag
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the baseline comparison.
func (r *BaselineResult) String() string {
	var b strings.Builder
	b.WriteString("Baseline comparison — overload BA % (detection lag, windows)\n")
	detectors := []string{"pi-threshold", "rt-threshold", "util-threshold", "coordinated-hpc"}
	fmt.Fprintf(&b, "%-12s", "workload")
	for _, d := range detectors {
		fmt.Fprintf(&b, " %18s", d)
	}
	b.WriteString("\n")
	for _, kind := range TestKinds() {
		fmt.Fprintf(&b, "%-12s", kind)
		for _, d := range detectors {
			if row := r.Row(d, kind); row != nil {
				fmt.Fprintf(&b, " %11.1f (%3.1f)", row.Overload*100, row.Lag)
			} else {
				fmt.Fprintf(&b, " %18s", "-")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-12s", "mean")
	for _, d := range detectors {
		fmt.Fprintf(&b, " %11.1f (%3.1f)", r.MeanBA(d)*100, r.MeanLag(d))
	}
	b.WriteString("\n")
	return b.String()
}

// LevelRow is the coordinated monitor's accuracy at one metric level on
// one workload.
type LevelRow struct {
	Level    metrics.Level
	Workload TestKind
	Overload float64
}

// LevelResult compares OS, HPC, and combined OS+HPC monitors — the
// combination the paper's conclusion proposes for future work.
type LevelResult struct {
	Rows []LevelRow
}

// RunLevelComparison trains a coordinated monitor per metric level
// (including the combined level) and evaluates all four test workloads.
// The (level × workload) cells fan out across the Lab's workers; rows
// assemble in the sequential sweep order.
func (l *Lab) RunLevelComparison() (*LevelResult, error) {
	type spec struct {
		level metrics.Level
		kind  TestKind
	}
	var specs []spec
	for _, level := range metrics.Levels() {
		for _, kind := range TestKinds() {
			specs = append(specs, spec{level, kind})
		}
	}
	rows, err := parallel.Map(context.Background(), len(specs), l.workers(), func(i int) (LevelRow, error) {
		sp := specs[i]
		monitor, err := l.TrainMonitor(sp.level, predictor.Config{})
		if err != nil {
			return LevelRow{}, fmt.Errorf("experiment: level %s: %w", sp.level, err)
		}
		test, err := l.TestTrace(sp.kind)
		if err != nil {
			return LevelRow{}, err
		}
		over, _, err := EvaluateMonitor(monitor, test)
		if err != nil {
			return LevelRow{}, err
		}
		return LevelRow{Level: sp.level, Workload: sp.kind, Overload: over}, nil
	})
	if err != nil {
		return nil, err
	}
	return &LevelResult{Rows: rows}, nil
}

// Row returns the row for (level, workload), or nil.
func (r *LevelResult) Row(level metrics.Level, kind TestKind) *LevelRow {
	for i := range r.Rows {
		if r.Rows[i].Level == level && r.Rows[i].Workload == kind {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the level comparison.
func (r *LevelResult) String() string {
	var b strings.Builder
	b.WriteString("Metric-level comparison (paper's future-work extension) — overload BA %\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "workload", "OS", "HPC", "OS+HPC")
	for _, kind := range TestKinds() {
		fmt.Fprintf(&b, "%-12s", kind)
		for _, level := range metrics.Levels() {
			if row := r.Row(level, kind); row != nil {
				fmt.Fprintf(&b, " %8.1f", row.Overload*100)
			} else {
				fmt.Fprintf(&b, " %8s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
