package server

import (
	"errors"
	"fmt"

	"hpcap/internal/sim"
	"hpcap/internal/tpcw"
)

// AdmissionState is what an admission controller sees when deciding whether
// to accept a new request at the front end.
type AdmissionState struct {
	Now          float64
	WaitQueue    int // requests queued for an app-tier thread
	BoundWorkers int // busy app-tier threads
}

// AdmissionFunc decides whether to admit a request; returning false rejects
// it immediately (the client receives a fast error page). A nil function
// admits everything, which is the paper's uncontrolled testbed.
type AdmissionFunc func(AdmissionState) bool

// Testbed is the simulated two-tier website: a TPC-W remote browser
// emulator in front of an application tier and a database tier.
type Testbed struct {
	cfg      Config
	engine   *sim.Engine
	rng      *sim.Source
	profiles map[tpcw.Interaction]tpcw.Profile
	tiers    [NumTiers]*tier

	schedule  tpcw.Schedule
	admission AdmissionFunc
	browsers  []*ebRunner
	nextEBID  int
	started   bool

	// Per-interval request accounting.
	arrivals      int
	completions   int
	rejections    int
	classArrivals [tpcw.NumInteractions]int
	rtSum         float64
	rtMax         float64
	inFlight      int

	// Lifetime totals for conservation checking.
	totalArrivals    int
	totalCompletions int
	totalRejections  int
}

// ebRunner is one live emulated browser.
type ebRunner struct {
	browser *tpcw.Browser
	alive   bool
}

// NewTestbed builds a testbed for the given configuration and load
// schedule.
func NewTestbed(cfg Config, schedule tpcw.Schedule) (*Testbed, error) {
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if err := schedule.Validate(); err != nil {
		return nil, err
	}
	engine := sim.NewEngine()
	rng := sim.NewSource(cfg.Seed)
	tb := &Testbed{
		cfg:      cfg,
		engine:   engine,
		rng:      rng,
		profiles: tpcw.DefaultProfiles(),
		schedule: schedule,
	}
	tb.tiers[TierApp] = newTier(TierApp, cfg.App, engine, rng.Fork())
	tb.tiers[TierDB] = newTier(TierDB, cfg.DB, engine, rng.Fork())
	return tb, nil
}

// Engine exposes the simulation engine (for schedulers and samplers built
// on top of the testbed).
func (tb *Testbed) Engine() *sim.Engine { return tb.engine }

// Now returns the current virtual time.
func (tb *Testbed) Now() float64 { return tb.engine.Now() }

// SetAdmission installs an admission controller. It must be called before
// Start.
func (tb *Testbed) SetAdmission(f AdmissionFunc) { tb.admission = f }

// Start arms the load schedule. It must be called exactly once before
// RunInterval.
func (tb *Testbed) Start() error {
	if tb.started {
		return fmt.Errorf("server: testbed already started")
	}
	tb.started = true
	var elapsed float64
	for _, p := range tb.schedule.Phases {
		p := p
		tb.engine.At(elapsed, func() { tb.applyPhase(p) })
		elapsed += p.Duration
	}
	return nil
}

// applyPhase adjusts the EB population and mix to match the phase.
func (tb *Testbed) applyPhase(p tpcw.Phase) {
	// Retarget mixes and think times of live browsers.
	live := 0
	for _, r := range tb.browsers {
		if r.alive {
			r.browser.SetMix(p.Mix)
			r.browser.SetThinkScale(p.ThinkScale)
			live++
		}
	}
	switch {
	case live < p.EBs:
		for i := live; i < p.EBs; i++ {
			tb.spawnEB(p.Mix, p.ThinkScale)
		}
	case live > p.EBs:
		// Retire the most recently spawned browsers first.
		toKill := live - p.EBs
		for i := len(tb.browsers) - 1; i >= 0 && toKill > 0; i-- {
			if tb.browsers[i].alive {
				tb.browsers[i].alive = false
				toKill--
			}
		}
	}
}

// spawnEB creates a browser and starts its session loop with a staggered
// initial think so that populations do not issue in lockstep.
func (tb *Testbed) spawnEB(mix tpcw.Mix, thinkScale float64) {
	tb.nextEBID++
	r := &ebRunner{
		browser: tpcw.NewBrowser(tb.nextEBID, mix, tb.rng.Fork()),
		alive:   true,
	}
	r.browser.SetThinkScale(thinkScale)
	tb.browsers = append(tb.browsers, r)
	initial := tb.rng.Float64() * r.browser.MeanThink
	tb.engine.Schedule(initial, func() { tb.ebIssue(r) })
}

// ebIssue runs one browser iteration: issue a request, then think, forever
// while alive.
func (tb *Testbed) ebIssue(r *ebRunner) {
	if !r.alive {
		return
	}
	interaction := r.browser.Next()
	tb.dispatch(interaction, func() {
		if !r.alive {
			return
		}
		tb.engine.Schedule(r.browser.Think(), func() { tb.ebIssue(r) })
	})
}

// dispatch pushes one interaction through the two tiers, calling done when
// the response (or rejection) reaches the client.
func (tb *Testbed) dispatch(it tpcw.Interaction, done func()) {
	prof, ok := tb.profiles[it]
	if !ok {
		done()
		return
	}
	app, db := tb.tiers[TierApp], tb.tiers[TierDB]
	arrival := tb.engine.Now()
	tb.arrivals++
	tb.totalArrivals++
	tb.classArrivals[it-tpcw.Home]++

	if tb.admission != nil {
		state := AdmissionState{
			Now:          arrival,
			WaitQueue:    len(app.waitQueue),
			BoundWorkers: app.bound,
		}
		if !tb.admission(state) {
			tb.rejections++
			tb.totalRejections++
			done()
			return
		}
	}
	tb.inFlight++

	// Draw the request's actual demands once, up front.
	appDemand := tb.rng.LogNormal(prof.AppDemand, prof.CV)
	dbDemand := tb.rng.LogNormal(prof.DBDemand, prof.CV)
	preDemand := appDemand * 0.6  // request parsing, servlet logic
	postDemand := appDemand * 0.4 // response rendering

	finish := func() {
		app.release(prof.AppWorkMB)
		rt := tb.engine.Now() - arrival
		tb.completions++
		tb.totalCompletions++
		tb.inFlight--
		tb.rtSum += rt
		if rt > tb.rtMax {
			tb.rtMax = rt
		}
		done()
	}

	// The servlet thread is held from admission to response — including
	// the DB call — which is what creates the request dead time the
	// paper describes.
	app.acquire(prof.AppWorkMB, func() {
		app.runBurst(preDemand, func() {
			tb.hop(func() {
				db.submit(dbDemand, prof.DBWorkMB, func() {
					tb.hop(func() {
						app.runBurst(postDemand, finish)
					})
				})
			})
		})
	})
}

// hop models one network traversal between machines.
func (tb *Testbed) hop(fn func()) {
	tb.engine.Schedule(tb.cfg.NetworkHop/2+tb.rng.Exp(tb.cfg.NetworkHop/2), fn)
}

// AddPeriodicLoad schedules a recurring CPU burst of the given demand
// (speed-1.0 CPU seconds) on a tier every period seconds — used to model
// the cost of metric collection daemons (§V.D). It must be called before
// the simulation advances past time zero and runs for the whole simulation.
func (tb *Testbed) AddPeriodicLoad(id TierID, period, demand float64) {
	t := tb.tiers[id]
	var tick func()
	tick = func() {
		t.runBurst(demand, nil)
		tb.engine.Schedule(period, tick)
	}
	tb.engine.Schedule(period, tick)
}

// Snapshot is the testbed-wide telemetry for one sampling interval.
type Snapshot struct {
	Time  float64
	Tiers [NumTiers]TierSnapshot

	// Request-level flows over the interval.
	Arrivals    int
	Completions int
	Rejections  int
	// ClassArrivals breaks Arrivals down by TPC-W interaction type, in
	// canonical order (index Interaction-Home) — the request-class
	// histogram that workload-mix drift detection compares across
	// windows. Rejected requests still count: the mix is a property of
	// the offered load, not of what was admitted.
	ClassArrivals [tpcw.NumInteractions]int
	MeanRT        float64 // mean response time of completed requests, seconds
	MaxRT         float64

	// Gauges.
	InFlight  int
	ActiveEBs int
}

// RunInterval advances the simulation dt seconds and returns the interval's
// telemetry.
func (tb *Testbed) RunInterval(dt float64) Snapshot {
	target := tb.engine.Now() + dt
	// Sentinel pins the clock to the interval boundary even if the event
	// queue momentarily empties.
	tb.engine.At(target, func() {})
	tb.engine.RunUntil(target)
	return tb.sample()
}

// sample collects and resets interval accounting.
func (tb *Testbed) sample() Snapshot {
	s := Snapshot{
		Time:          tb.engine.Now(),
		Arrivals:      tb.arrivals,
		Completions:   tb.completions,
		Rejections:    tb.rejections,
		ClassArrivals: tb.classArrivals,
		MaxRT:         tb.rtMax,
		InFlight:      tb.inFlight,
	}
	if tb.completions > 0 {
		s.MeanRT = tb.rtSum / float64(tb.completions)
	}
	for id, t := range tb.tiers {
		s.Tiers[id] = t.snapshot()
	}
	for _, r := range tb.browsers {
		if r.alive {
			s.ActiveEBs++
		}
	}
	tb.arrivals, tb.completions, tb.rejections = 0, 0, 0
	tb.classArrivals = [tpcw.NumInteractions]int{}
	tb.rtSum, tb.rtMax = 0, 0
	return s
}

// Conservation returns lifetime totals for invariant checking: every
// arrival is eventually a completion, a rejection, or still in flight.
func (tb *Testbed) Conservation() (arrivals, completions, rejections, inFlight int) {
	return tb.totalArrivals, tb.totalCompletions, tb.totalRejections, tb.inFlight
}
