package server

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultTopologyValid(t *testing.T) {
	if errs := DefaultTopologyConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultTopologyConfig invalid: %v", errs)
	}
	if errs := TwoTierTopology(DefaultConfig()).Validate(); len(errs) > 0 {
		t.Fatalf("TwoTierTopology invalid: %v", errs)
	}
}

func TestPoolKindString(t *testing.T) {
	if PoolFront.String() != "front" || PoolCache.String() != "cache" || PoolStore.String() != "store" {
		t.Error("pool kind names wrong")
	}
	if !strings.Contains(PoolKind(42).String(), "42") {
		t.Error("unknown pool kind name wrong")
	}
}

func TestTopologyValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*TopologyConfig)
		// want is a substring each case must produce at least once.
		want string
	}{
		{"no pools", func(tc *TopologyConfig) { tc.Pools = nil }, "no pools"},
		{"empty name", func(tc *TopologyConfig) { tc.Pools[1].Name = "" }, "has no name"},
		{"duplicate name", func(tc *TopologyConfig) { tc.Pools[1].Name = "app" }, "duplicate pool name"},
		{"unknown kind", func(tc *TopologyConfig) { tc.Pools[0].Kind = 0 }, "unknown kind"},
		{"slot out of range", func(tc *TopologyConfig) { tc.Pools[2].Slot = NumTiers }, "out of range"},
		{"zero replicas", func(tc *TopologyConfig) { tc.Pools[0].Replicas = 0 }, "replicas, need >= 1"},
		{"negative bounds", func(tc *TopologyConfig) { tc.Pools[0].MinReplicas = -1 }, "negative replica bounds"},
		{"inverted bounds", func(tc *TopologyConfig) { tc.Pools[0].MinReplicas = 7 }, "bounds inverted"},
		{"start outside bounds", func(tc *TopologyConfig) { tc.Pools[0].Replicas = 9 }, "outside bounds"},
		{"NaN demand frac", func(tc *TopologyConfig) { tc.Pools[0].DemandFrac = math.NaN() }, "bad demand fraction"},
		{"negative work frac", func(tc *TopologyConfig) { tc.Pools[1].WorkFrac = -1 }, "bad work fraction"},
		{"hit ratio out of range", func(tc *TopologyConfig) { tc.Pools[1].HitRatio = 1.5 }, "outside [0,1]"},
		{"hit ratio on store", func(tc *TopologyConfig) { tc.Pools[2].HitRatio = 0.5 }, "is not a cache"},
		{"bad tier", func(tc *TopologyConfig) { tc.Pools[0].Tier.MaxWorkers = 0 }, "MaxWorkers must be positive"},
		{"unknown downstream", func(tc *TopologyConfig) { tc.Pools[0].Downstream = []string{"ghost"} }, "does not exist"},
		{"duplicate downstream", func(tc *TopologyConfig) {
			tc.Pools[0].Downstream = []string{"cache", "cache"}
		}, "twice"},
		{"no entry", func(tc *TopologyConfig) { tc.Entry = "" }, "no entry pool"},
		{"unknown entry", func(tc *TopologyConfig) { tc.Entry = "ghost" }, "does not exist"},
		{"non-front entry", func(tc *TopologyConfig) { tc.Entry = "db" }, "must be a front pool"},
		{"negative hop", func(tc *TopologyConfig) { tc.NetworkHop = -1 }, "NetworkHop"},
		{"cycle", func(tc *TopologyConfig) { tc.Pools[2].Downstream = []string{"app"} }, "cycle through edge"},
		{"self cycle", func(tc *TopologyConfig) { tc.Pools[2].Downstream = []string{"db"} }, "cycle through edge"},
		{"orphan", func(tc *TopologyConfig) { tc.Pools[1].Downstream = nil }, "orphaned"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tc := DefaultTopologyConfig()
			tt.mutate(&tc)
			errs := tc.Validate()
			if len(errs) == 0 {
				t.Fatalf("%s not rejected", tt.name)
			}
			for _, err := range errs {
				if strings.Contains(err.Error(), tt.want) {
					return
				}
			}
			t.Errorf("no error mentions %q: %v", tt.want, errs)
		})
	}
}

// TestTopologyValidateOnePerViolation pins the one-error-per-violation
// contract: stacking independent defects yields independent errors.
func TestTopologyValidateOnePerViolation(t *testing.T) {
	tc := DefaultTopologyConfig()
	tc.Pools[0].Replicas = 0            // zero replicas (now also outside [1,6])
	tc.Pools[1].HitRatio = 2            // bad hit ratio
	tc.Pools[2].Downstream = []string{"app"} // cycle app->cache->db->app
	errs := tc.Validate()
	counts := map[string]int{}
	for _, e := range errs {
		switch {
		case strings.Contains(e.Error(), "replicas, need >= 1"):
			counts["replicas"]++
		case strings.Contains(e.Error(), "outside [0,1]"):
			counts["hit"]++
		case strings.Contains(e.Error(), "cycle through edge"):
			counts["cycle"]++
		}
	}
	for _, k := range []string{"replicas", "hit", "cycle"} {
		if counts[k] != 1 {
			t.Errorf("violation %q reported %d times, want 1 (errs: %v)", k, counts[k], errs)
		}
	}
}

func TestVisitFractions(t *testing.T) {
	tc := DefaultTopologyConfig() // app -> cache(hit 0.7) -> db
	vf := tc.VisitFractions()
	if got := vf["app"]; got != 1 {
		t.Errorf("app visits = %v, want 1", got)
	}
	if got := vf["cache"]; got != 1 {
		t.Errorf("cache visits = %v, want 1", got)
	}
	if got := vf["db"]; math.Abs(got-0.3) > 1e-12 {
		t.Errorf("db visits = %v, want 0.3", got)
	}
}

func TestBottleneckPoolRule(t *testing.T) {
	if BottleneckPool(nil) != -1 {
		t.Error("empty loads should give -1")
	}
	loads := []PoolLoad{
		{Pool: "a", Replicas: 2, Offered: 1.0, Capacity: 2.0}, // 0.5
		{Pool: "b", Replicas: 1, Offered: 0.9, Capacity: 1.0}, // 0.9
		{Pool: "c", Replicas: 4, Offered: 2.0, Capacity: 4.0}, // 0.5
	}
	if got := BottleneckPool(loads); got != 1 {
		t.Errorf("bottleneck = %d, want 1", got)
	}
	// A drained pool under load dominates everything.
	loads[2].Capacity, loads[2].Offered = 0, 0.1
	if got := BottleneckPool(loads); got != 2 {
		t.Errorf("bottleneck with drained pool = %d, want 2", got)
	}
	// Ties break to the earliest pool.
	tie := []PoolLoad{
		{Pool: "x", Offered: 1, Capacity: 2},
		{Pool: "y", Offered: 2, Capacity: 4},
	}
	if got := BottleneckPool(tie); got != 0 {
		t.Errorf("tie bottleneck = %d, want 0", got)
	}
}

// FuzzTopologyConfig decodes arbitrary bytes into a topology and checks
// that Validate never panics, that a clean bill of health really is
// constructible, and that the cardinal violations — cycles, zero
// replicas, orphan pools — are each reported exactly once per instance.
func FuzzTopologyConfig(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 1, 1, 0, 0})
	f.Add([]byte{3, 1, 2, 8, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{6, 255, 254, 253, 252, 251, 250, 249, 248, 247, 246, 245})
	f.Fuzz(func(t *testing.T, data []byte) {
		tc := decodeTopology(data)
		var errs []error
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Validate panicked: %v (topology %+v)", r, tc)
				}
			}()
			errs = tc.Validate()
		}()
		for i, p := range tc.Pools {
			if p.Replicas <= 0 && p.Name != "" && !dupName(tc.Pools, i) {
				if n := countErrs(errs, "pool %q has", p.Name, "replicas, need >= 1"); n != 1 {
					t.Fatalf("zero-replica pool %q reported %d times, want 1: %v", p.Name, n, errs)
				}
			}
		}
		if len(errs) > 0 {
			return
		}
		// A validated topology must build and run without panicking; its
		// visit fractions must be finite (acyclicity is proven above).
		for name, v := range tc.VisitFractions() {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("visit fraction %v for %q", v, name)
			}
		}
	})
}

// dupName reports whether pools[i].Name already occurs earlier — those
// pools are skipped by per-pool validation.
func dupName(pools []PoolConfig, i int) bool {
	for j := 0; j < i; j++ {
		if pools[j].Name == pools[i].Name {
			return true
		}
	}
	return false
}

// countErrs counts errors containing both format-rendered fragments.
func countErrs(errs []error, _ string, name, frag string) int {
	n := 0
	for _, e := range errs {
		s := e.Error()
		if strings.Contains(s, `"`+name+`"`) && strings.Contains(s, frag) {
			n++
		}
	}
	return n
}

// decodeTopology deterministically maps fuzz bytes to a TopologyConfig,
// deliberately able to express every violation class: cycles (downstream
// indices may point backward), zero replicas, orphans, bad fractions.
func decodeTopology(data []byte) TopologyConfig {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	base := DefaultConfig()
	n := int(next()%7) + 1
	names := []string{"lb", "app", "cache", "db", "idx", "blob", "log"}
	tc := TopologyConfig{NetworkHop: base.NetworkHop, Seed: 1}
	for i := 0; i < n; i++ {
		b := next()
		p := PoolConfig{
			Name:       names[i],
			Kind:       PoolKind(b % 5), // includes invalid kinds 0 and 4
			Slot:       TierID(int(b>>3) % 3),
			Replicas:   int(b>>5) % 4, // includes zero
			Tier:       base.App,
			DemandFrac: float64(next()%8) / 4,
			WorkFrac:   1,
		}
		if p.Kind == PoolCache {
			p.HitRatio = float64(next()%12) / 8 // may exceed 1
		}
		e := next()
		for k := 0; k < int(e%3); k++ {
			p.Downstream = append(p.Downstream, names[int(next())%n])
		}
		if b&0x80 != 0 {
			p.MinReplicas = int(next() % 3)
			p.MaxReplicas = int(next() % 5)
		}
		tc.Pools = append(tc.Pools, p)
	}
	if next()%8 != 0 {
		tc.Entry = names[int(next())%n]
	}
	if next()%16 == 0 {
		tc.NetworkHop = math.NaN()
	}
	return tc
}
