package server

import (
	"math"

	"hpcap/internal/sim"
)

// TierID identifies one tier of the website.
type TierID int

// The two tiers of the testbed.
const (
	TierApp TierID = iota
	TierDB
)

// NumTiers is the number of tiers in the testbed.
const NumTiers = 2

// String returns the tier's name.
func (t TierID) String() string {
	switch t {
	case TierApp:
		return "app"
	case TierDB:
		return "db"
	default:
		return "tier?"
	}
}

// burst is one CPU demand placed on a tier's processor. The CPU is shared
// round-robin in fixed quanta, approximating the Linux scheduler: light
// bursts complete quickly even while heavy bursts are in progress.
type burst struct {
	remaining float64 // CPU seconds at speed 1.0 still to execute
	done      func()
}

// waiter is a worker-slot acquisition request queued behind a full pool.
type waiter struct {
	workMB   float64
	acquired func()
}

// tier models one machine running one server process: a bounded worker pool
// (servlet threads on the app tier, connections on the DB tier), a FIFO
// queue of requests waiting for a slot, and a single FCFS CPU executing the
// bursts of bound workers.
type tier struct {
	id     TierID
	cfg    TierConfig
	engine *sim.Engine
	rng    *sim.Source

	// Worker pool.
	bound     int // workers currently bound (running or blocked downstream)
	waitQueue []waiter
	activeSet float64 // total working-set MB of bound workers

	// CPU.
	cpuQueue []*burst // runnable bursts awaiting the processor
	cpuBusy  bool

	// Idle-priority background work: a credit of pending CPU-seconds that
	// refills at cfg.BackgroundRate and is consumed one quantum at a time
	// whenever no request burst is runnable.
	bgCredit  float64
	bgAccrued float64 // virtual time of the last credit refill
	bgWake    bool    // a wake-up event is pending

	// stopped shuts the housekeeping loop down: a drained DAG replica
	// finishes its in-flight request bursts but accrues no further
	// background work. Always false on the legacy testbed's tiers.
	stopped bool

	acc intervalAccum
}

// intervalAccum accumulates per-interval counter flows; gauges are read
// directly from the tier at sample time.
type intervalAccum struct {
	busySeconds  float64
	fgBusy       float64 // request processing only, excluding housekeeping
	instructions float64
	cycles       float64
	l2Refs       float64
	l2Misses     float64
	ctxSwitches  float64
	itlbMisses   float64
	branches     float64
	branchMiss   float64
	bursts       int
	dilationSum  float64 // wall-weighted dilation for diagnostics
	missSum      float64 // wall-weighted miss ratio
}

func newTier(id TierID, cfg TierConfig, engine *sim.Engine, rng *sim.Source) *tier {
	t := &tier{id: id, cfg: cfg, engine: engine, rng: rng}
	if cfg.BackgroundRate > 0 {
		// Kick the idle-priority housekeeping loop once the simulation
		// starts.
		engine.Schedule(0, func() {
			if !t.cpuBusy {
				t.cpuBusy = true
				t.startNext()
			}
		})
	}
	return t
}

// acquire obtains a worker slot charged with workMB of working set, calling
// fn once the slot is held. If the pool is full the acquisition queues FIFO.
func (t *tier) acquire(workMB float64, fn func()) {
	if t.bound < t.cfg.MaxWorkers {
		t.bound++
		t.activeSet += workMB
		fn()
		return
	}
	t.waitQueue = append(t.waitQueue, waiter{workMB: workMB, acquired: fn})
}

// release frees a slot acquired with acquire and hands it to the next
// waiter, if any.
func (t *tier) release(workMB float64) {
	t.bound--
	t.activeSet -= workMB
	if t.activeSet < 0 {
		t.activeSet = 0
	}
	if len(t.waitQueue) == 0 {
		return
	}
	w := t.waitQueue[0]
	t.waitQueue[0] = waiter{}
	t.waitQueue = t.waitQueue[1:]
	t.bound++
	t.activeSet += w.workMB
	w.acquired()
}

// submit acquires a worker slot, runs one CPU burst, releases the slot, and
// then calls done — the database-tier pattern (one query per connection
// hold).
func (t *tier) submit(demand, workMB float64, done func()) {
	t.acquire(workMB, func() {
		t.runBurst(demand, func() {
			t.release(workMB)
			done()
		})
	})
}

// runBurst places a CPU burst for a worker that already holds a slot; done
// runs at completion. The application tier uses acquire + runBurst directly
// because its servlet thread stays bound across the downstream database
// call (the request "dead time" of the paper).
func (t *tier) runBurst(demand float64, done func()) {
	b := &burst{remaining: demand, done: done}
	t.cpuQueue = append(t.cpuQueue, b)
	if !t.cpuBusy {
		t.startNext()
	}
}

// startNext pops the CPU queue and executes one quantum of the head burst,
// re-queuing it at the tail if work remains (round-robin time sharing).
// With no runnable request burst, idle-priority background work runs
// instead.
func (t *tier) startNext() {
	if len(t.cpuQueue) == 0 {
		if t.runBackground() {
			return
		}
		t.cpuBusy = false
		return
	}
	t.cpuBusy = true
	b := t.cpuQueue[0]
	t.cpuQueue[0] = nil
	t.cpuQueue = t.cpuQueue[1:]

	// Contention is evaluated per quantum, so a burst's dilation tracks
	// the load around it as it executes.
	miss, dil := t.contention()
	quantum := t.cfg.QuantumSec
	if quantum <= 0 {
		quantum = defaultQuantumSec
	}
	// A quantum of wall time executes quantum*speed/dil of demand.
	consumed := quantum * t.cfg.Machine.Speed / dil
	wall := quantum
	if consumed >= b.remaining {
		consumed = b.remaining
		wall = consumed / t.cfg.Machine.Speed * dil
	}
	b.remaining -= consumed

	t.engine.Schedule(wall, func() {
		t.account(consumed, wall, miss, dil)
		if b.remaining > 1e-12 {
			t.cpuQueue = append(t.cpuQueue, b)
			t.startNext()
			return
		}
		t.acc.bursts++
		done := b.done
		t.startNext()
		if done != nil {
			done()
		}
	})
}

// accrueBackground refills the background-work credit from elapsed virtual
// time, capped at the configured bank so catch-up bursts are bounded.
func (t *tier) accrueBackground() {
	now := t.engine.Now()
	t.bgCredit += (now - t.bgAccrued) * t.cfg.BackgroundRate
	t.bgAccrued = now
	bank := t.cfg.BackgroundBankSec
	if bank <= 0 {
		bank = 1
	}
	if t.bgCredit > bank {
		t.bgCredit = bank
	}
}

// runBackground executes one quantum of housekeeping work if credit allows,
// reporting whether the CPU stays busy. With insufficient credit it arms a
// wake-up for when the credit refills.
func (t *tier) runBackground() bool {
	if t.cfg.BackgroundRate <= 0 || t.stopped {
		return false
	}
	t.accrueBackground()
	quantum := t.cfg.QuantumSec
	if quantum <= 0 {
		quantum = defaultQuantumSec
	}
	need := quantum * t.cfg.Machine.Speed
	if t.bgCredit < need {
		if !t.bgWake {
			t.bgWake = true
			// Wake slightly late so floating-point accrual cannot land a
			// hair short of the quantum and re-arm at an infinitesimal
			// delay.
			delay := (need-t.bgCredit)/t.cfg.BackgroundRate*1.01 + 1e-6
			t.engine.Schedule(delay, func() {
				t.bgWake = false
				if !t.cpuBusy {
					t.cpuBusy = true
					t.startNext()
				}
			})
		}
		return false
	}
	t.cpuBusy = true
	t.bgCredit -= need
	t.engine.Schedule(quantum, func() {
		t.accountBackground(need, quantum)
		t.startNext()
	})
	return true
}

// accountBackground charges one housekeeping quantum: real instructions and
// cycles with benign cache behaviour.
func (t *tier) accountBackground(consumed, wall float64) {
	m := t.cfg.Machine
	instr := consumed * m.InstrPerDemandSec
	t.acc.busySeconds += wall
	t.acc.instructions += instr
	t.acc.cycles += wall * m.ClockHz
	t.acc.l2Refs += instr * m.L2RefPerInstr
	t.acc.l2Misses += instr * m.L2RefPerInstr * t.cfg.BackgroundMiss
	t.acc.ctxSwitches++
	t.acc.itlbMisses += 85 + instr*1.2e-5
	t.acc.branches += instr * m.BranchPerInstr
	t.acc.branchMiss += instr * m.BranchPerInstr * 0.045
	t.acc.dilationSum += wall
	t.acc.missSum += t.cfg.BackgroundMiss * wall
}

// contention returns the current L2 miss ratio and service-time dilation,
// evaluated from the tier's instantaneous state. This is where overload is
// born: dilation consumes real capacity while simultaneously leaving its
// signature in the hardware counters.
func (t *tier) contention() (missRatio, dilation float64) {
	// Working-set saturation: x²/(1+x²) reaches ½ at ThrashMB.
	x := t.activeSet / t.cfg.ThrashMB
	ws := x * x / (1 + x*x)

	// Scheduler pressure from runnable workers.
	runnable := float64(len(t.cpuQueue) + 1) // including the one we start
	frac := runnable / float64(t.cfg.MaxWorkers)
	if frac > 1 {
		frac = 1
	}
	sched := math.Pow(frac, 1.5)

	missRatio = t.cfg.BaseMissRatio +
		(t.cfg.MaxMissRatio-t.cfg.BaseMissRatio)*clamp01(0.75*ws+0.35*sched)
	dilation = 1 + t.cfg.MissPenalty*(missRatio-t.cfg.BaseMissRatio) + t.cfg.CtxSwitchK*sched
	return missRatio, dilation
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// account charges one executed quantum to the interval accumulators.
func (t *tier) account(consumed, wall, missRatio, dilation float64) {
	m := t.cfg.Machine
	instr := consumed * m.InstrPerDemandSec
	cycles := wall * m.ClockHz
	runnable := float64(len(t.cpuQueue) + 1)
	// One involuntary switch per quantum boundary plus load-dependent
	// voluntary switching (wakeups, lock handoffs).
	cs := 1 + wall*t.cfg.CtxSwitchRate*runnable

	t.acc.busySeconds += wall
	t.acc.fgBusy += wall
	t.acc.instructions += instr
	t.acc.cycles += cycles
	t.acc.l2Refs += instr * m.L2RefPerInstr
	t.acc.l2Misses += instr * m.L2RefPerInstr * missRatio
	t.acc.ctxSwitches += cs
	// Each context switch costs ITLB refills; add a base rate for the
	// process's own paging behaviour.
	t.acc.itlbMisses += cs*85 + instr*1.2e-5
	t.acc.branches += instr * m.BranchPerInstr
	// Branch misprediction degrades slightly with cache pressure
	// (polluted BTB).
	t.acc.branchMiss += instr * m.BranchPerInstr * (0.045 + 0.05*missRatio)
	t.acc.dilationSum += dilation * wall
	t.acc.missSum += missRatio * wall
}

// TierSnapshot is the per-interval telemetry of one tier: counter flows
// accumulated since the previous snapshot plus instantaneous gauges.
type TierSnapshot struct {
	Tier TierID

	// Flows over the interval.
	BusySeconds float64
	// FgBusySeconds excludes idle-priority housekeeping: the CPU time
	// spent on request processing alone. It is not visible to either
	// metric collector; experiments use it for ground-truth bottleneck
	// attribution.
	FgBusySeconds float64
	Instructions  float64
	Cycles        float64
	L2Refs        float64
	L2Misses      float64
	CtxSwitches   float64
	ITLBMisses    float64
	Branches      float64
	BranchMiss    float64
	Bursts        int
	// MeanDilation and MeanMissRatio are wall-time-weighted means over
	// the interval's bursts (diagnostics; collectors do not see them).
	MeanDilation  float64
	MeanMissRatio float64

	// Gauges at snapshot time.
	RunQueue     int     // runnable bursts queued for the CPU
	BoundWorkers int     // bound threads/connections
	WaitQueue    int     // requests waiting for a worker slot
	WorkingSetMB float64 // combined working set of bound workers
}

// snapshot returns the interval telemetry and resets the flow accumulators.
func (t *tier) snapshot() TierSnapshot {
	// Background threads count as runnable whenever they hold credit: the
	// OS run queue cannot tell housekeeping from request work.
	bgRunnable := 0
	if t.cfg.BackgroundRate > 0 && !t.stopped {
		t.accrueBackground()
		if t.bgCredit > 0.01 {
			bgRunnable = t.cfg.BackgroundThreads
		}
	}
	// Under cache thrash, most queued workers are asleep on locks (S
	// state), not runnable: the OS-visible run queue shrinks exactly when
	// the machine is most overloaded.
	fgRunnable := len(t.cpuQueue)
	if t.cfg.LockBlockFrac > 0 && fgRunnable > 0 {
		miss, _ := t.contention()
		span := t.cfg.MaxMissRatio - t.cfg.BaseMissRatio
		blocked := 0.0
		if span > 0 {
			blocked = t.cfg.LockBlockFrac * clamp01((miss-t.cfg.BaseMissRatio)/span)
		}
		fgRunnable = int(float64(fgRunnable)*(1-blocked) + 0.5)
	}
	s := TierSnapshot{
		Tier:          t.id,
		BusySeconds:   t.acc.busySeconds,
		FgBusySeconds: t.acc.fgBusy,
		Instructions:  t.acc.instructions,
		Cycles:        t.acc.cycles,
		L2Refs:        t.acc.l2Refs,
		L2Misses:      t.acc.l2Misses,
		CtxSwitches:   t.acc.ctxSwitches,
		ITLBMisses:    t.acc.itlbMisses,
		Branches:      t.acc.branches,
		BranchMiss:    t.acc.branchMiss,
		Bursts:        t.acc.bursts,
		RunQueue:      fgRunnable + bgRunnable,
		BoundWorkers:  t.bound,
		WaitQueue:     len(t.waitQueue),
		WorkingSetMB:  t.activeSet,
	}
	if t.acc.busySeconds > 0 {
		s.MeanDilation = t.acc.dilationSum / t.acc.busySeconds
		s.MeanMissRatio = t.acc.missSum / t.acc.busySeconds
	} else {
		s.MeanDilation = 1
		s.MeanMissRatio = t.cfg.BaseMissRatio
	}
	t.acc = intervalAccum{}
	return s
}
