package server

import (
	"errors"
	"fmt"

	"hpcap/internal/sim"
	"hpcap/internal/tpcw"
)

// DAGTestbed simulates a website whose serving path is an arbitrary tier
// DAG of replica pools (TopologyConfig): a load balancer round-robins
// requests across the entry pool's replicas, each of which holds its
// worker across a chain of downstream calls — caches answering some
// visits locally, store shards executing the rest.
//
// The degenerate two-tier topology (TwoTierTopology) replays the legacy
// Testbed event for event and draw for draw: pools are created in
// declaration order with one rng fork per replica, dispatch draws the
// app and DB demands up front exactly as Testbed.dispatch does, and the
// cache hit coin exists only when a cache pool does. The differential
// equivalence test pins byte-identical transcripts.
type DAGTestbed struct {
	topo     TopologyConfig
	engine   *sim.Engine
	rng      *sim.Source
	profiles map[tpcw.Interaction]tpcw.Profile
	pools    []*pool
	byName   map[string]*pool
	entry    *pool

	schedule  tpcw.Schedule
	admission AdmissionFunc
	browsers  []*ebRunner
	nextEBID  int
	started   bool

	// Per-interval request accounting (mirrors Testbed).
	arrivals      int
	completions   int
	rejections    int
	classArrivals [tpcw.NumInteractions]int
	rtSum         float64
	rtMax         float64
	inFlight      int

	// Lifetime totals for conservation checking.
	totalArrivals    int
	totalCompletions int
	totalRejections  int

	// Autoscale accounting.
	scaleUps   int
	scaleDowns int

	lastLoads []PoolLoad // loads of the last completed interval
}

// pool is one replica pool at runtime.
type pool struct {
	cfg  PoolConfig
	reps []*replica
	rr   int // round-robin routing cursor
	down []*pool

	offered      float64 // demand seconds offered this interval
	totalOffered float64
}

// replica is one machine of a pool. A draining replica finishes its
// in-flight work but receives no new requests and runs no housekeeping.
type replica struct {
	t        *tier
	draining bool
}

// active returns the number of routable replicas.
func (p *pool) active() int {
	n := 0
	for _, r := range p.reps {
		if !r.draining {
			n++
		}
	}
	return n
}

// capacity returns the pool's active capacity in demand seconds per
// second.
func (p *pool) capacity() float64 {
	return float64(p.active()) * p.cfg.Tier.Machine.Speed
}

// route picks the next replica round-robin, skipping draining machines.
// Routing is deterministic: no randomness, so the degenerate single-
// replica pool always routes to its only machine.
func (p *pool) route() *replica {
	for i := 0; i < len(p.reps); i++ {
		r := p.reps[p.rr%len(p.reps)]
		p.rr++
		if !r.draining {
			return r
		}
	}
	// Every replica is draining (the scale-down guard prevents this);
	// fall back to the first so in-flight traffic still lands somewhere.
	return p.reps[0]
}

// NewDAGTestbed builds a DAG testbed for the given topology and load
// schedule.
func NewDAGTestbed(topo TopologyConfig, schedule tpcw.Schedule) (*DAGTestbed, error) {
	if errs := topo.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if err := schedule.Validate(); err != nil {
		return nil, err
	}
	engine := sim.NewEngine()
	rng := sim.NewSource(topo.Seed)
	tb := &DAGTestbed{
		topo:     topo,
		engine:   engine,
		rng:      rng,
		profiles: tpcw.DefaultProfiles(),
		schedule: schedule,
		byName:   make(map[string]*pool, len(topo.Pools)),
	}
	// Pools in declaration order, replicas in index order: the rng fork
	// sequence is part of the determinism contract (and, for the
	// degenerate topology, matches NewTestbed's app-then-db forks).
	for _, pc := range topo.Pools {
		p := &pool{cfg: pc}
		for i := 0; i < pc.Replicas; i++ {
			p.reps = append(p.reps, &replica{t: newTier(pc.Slot, pc.Tier, engine, rng.Fork())})
		}
		tb.pools = append(tb.pools, p)
		tb.byName[pc.Name] = p
	}
	for _, p := range tb.pools {
		for _, d := range p.cfg.Downstream {
			p.down = append(p.down, tb.byName[d])
		}
	}
	tb.entry = tb.byName[topo.Entry]
	return tb, nil
}

// Engine exposes the simulation engine.
func (tb *DAGTestbed) Engine() *sim.Engine { return tb.engine }

// Now returns the current virtual time.
func (tb *DAGTestbed) Now() float64 { return tb.engine.Now() }

// Topology returns the testbed's (immutable) topology configuration.
func (tb *DAGTestbed) Topology() TopologyConfig { return tb.topo }

// SetAdmission installs an admission controller consulted at the entry
// pool. It must be called before Start.
func (tb *DAGTestbed) SetAdmission(f AdmissionFunc) { tb.admission = f }

// Start arms the load schedule. It must be called exactly once before
// RunInterval.
func (tb *DAGTestbed) Start() error {
	if tb.started {
		return fmt.Errorf("server: DAG testbed already started")
	}
	tb.started = true
	var elapsed float64
	for _, p := range tb.schedule.Phases {
		p := p
		tb.engine.At(elapsed, func() { tb.applyPhase(p) })
		elapsed += p.Duration
	}
	return nil
}

// applyPhase adjusts the EB population and mix to match the phase
// (identical to Testbed.applyPhase).
func (tb *DAGTestbed) applyPhase(p tpcw.Phase) {
	live := 0
	for _, r := range tb.browsers {
		if r.alive {
			r.browser.SetMix(p.Mix)
			r.browser.SetThinkScale(p.ThinkScale)
			live++
		}
	}
	switch {
	case live < p.EBs:
		for i := live; i < p.EBs; i++ {
			tb.spawnEB(p.Mix, p.ThinkScale)
		}
	case live > p.EBs:
		toKill := live - p.EBs
		for i := len(tb.browsers) - 1; i >= 0 && toKill > 0; i-- {
			if tb.browsers[i].alive {
				tb.browsers[i].alive = false
				toKill--
			}
		}
	}
}

// spawnEB creates a browser with a staggered initial think (identical to
// Testbed.spawnEB).
func (tb *DAGTestbed) spawnEB(mix tpcw.Mix, thinkScale float64) {
	tb.nextEBID++
	r := &ebRunner{
		browser: tpcw.NewBrowser(tb.nextEBID, mix, tb.rng.Fork()),
		alive:   true,
	}
	r.browser.SetThinkScale(thinkScale)
	tb.browsers = append(tb.browsers, r)
	initial := tb.rng.Float64() * r.browser.MeanThink
	tb.engine.Schedule(initial, func() { tb.ebIssue(r) })
}

// ebIssue runs one browser iteration: issue, then think, while alive.
func (tb *DAGTestbed) ebIssue(r *ebRunner) {
	if !r.alive {
		return
	}
	interaction := r.browser.Next()
	tb.dispatch(interaction, func() {
		if !r.alive {
			return
		}
		tb.engine.Schedule(r.browser.Think(), func() { tb.ebIssue(r) })
	})
}

// dispatch pushes one interaction through the DAG, calling done when the
// response (or rejection) reaches the client. The entry pool's worker is
// held across the whole downstream walk — the request dead time of the
// paper, generalized to an arbitrary call chain.
func (tb *DAGTestbed) dispatch(it tpcw.Interaction, done func()) {
	prof, ok := tb.profiles[it]
	if !ok {
		done()
		return
	}
	arrival := tb.engine.Now()
	tb.arrivals++
	tb.totalArrivals++
	tb.classArrivals[it-tpcw.Home]++

	ep := tb.entry
	rep := ep.route()
	if tb.admission != nil {
		state := AdmissionState{
			Now:          arrival,
			WaitQueue:    len(rep.t.waitQueue),
			BoundWorkers: rep.t.bound,
		}
		if !tb.admission(state) {
			tb.rejections++
			tb.totalRejections++
			done()
			return
		}
	}
	tb.inFlight++

	// Draw the request's actual demands once, up front — the same two
	// draws, in the same order, as the legacy testbed.
	appDemand := tb.rng.LogNormal(prof.AppDemand, prof.CV)
	dbDemand := tb.rng.LogNormal(prof.DBDemand, prof.CV)
	entryDemand := appDemand * ep.cfg.DemandFrac
	preDemand := entryDemand * 0.6  // request parsing, servlet logic
	postDemand := entryDemand * 0.4 // response rendering
	workMB := prof.AppWorkMB * ep.cfg.WorkFrac
	ep.offered += entryDemand
	ep.totalOffered += entryDemand

	finish := func() {
		rep.t.release(workMB)
		rt := tb.engine.Now() - arrival
		tb.completions++
		tb.totalCompletions++
		tb.inFlight--
		tb.rtSum += rt
		if rt > tb.rtMax {
			tb.rtMax = rt
		}
		done()
	}

	rep.t.acquire(workMB, func() {
		rep.t.runBurst(preDemand, func() {
			tb.descend(ep.down, 0, prof, dbDemand, func() {
				rep.t.runBurst(postDemand, finish)
			})
		})
	})
}

// descend walks one pool's downstream chain in order: hop to the next
// pool, execute the request's share of work on one of its replicas,
// recurse into that pool's own downstream (unless a cache hit absorbs
// the visit), hop back, continue the chain, and finally call cont.
func (tb *DAGTestbed) descend(chain []*pool, i int, prof tpcw.Profile, dbDemand float64, cont func()) {
	if i >= len(chain) {
		cont()
		return
	}
	p := chain[i]
	next := func() { tb.descend(chain, i+1, prof, dbDemand, cont) }
	demand := dbDemand * p.cfg.DemandFrac
	workMB := prof.DBWorkMB * p.cfg.WorkFrac
	tb.hop(func() {
		rep := p.route()
		p.offered += demand
		p.totalOffered += demand
		if p.cfg.Kind == PoolCache && tb.rng.Float64() < p.cfg.HitRatio {
			// Cache hit: answered locally, downstream untouched.
			rep.t.submit(demand, workMB, func() { tb.hop(next) })
			return
		}
		if len(p.down) > 0 {
			rep.t.submit(demand, workMB, func() {
				tb.descend(p.down, 0, prof, dbDemand, func() { tb.hop(next) })
			})
			return
		}
		rep.t.submit(demand, workMB, func() { tb.hop(next) })
	})
}

// hop models one network traversal between pools (identical draw to
// Testbed.hop).
func (tb *DAGTestbed) hop(fn func()) {
	tb.engine.Schedule(tb.topo.NetworkHop/2+tb.rng.Exp(tb.topo.NetworkHop/2), fn)
}

// AddPeriodicLoad schedules a recurring CPU burst on every replica of the
// named pool every period seconds — the cost of per-machine collection
// daemons. Call before the simulation advances past time zero; replicas
// added later by AddReplica do not inherit it.
func (tb *DAGTestbed) AddPeriodicLoad(poolName string, period, demand float64) {
	p, ok := tb.byName[poolName]
	if !ok {
		return
	}
	for _, r := range p.reps {
		t := r.t
		var tick func()
		tick = func() {
			t.runBurst(demand, nil)
			tb.engine.Schedule(period, tick)
		}
		tb.engine.Schedule(period, tick)
	}
}

// AddReplica grows the named pool by one machine, reviving the most
// recently drained replica if one exists (its caches are still warm) and
// cold-starting a fresh tier otherwise. It reports the new active count
// and whether anything changed; pools at MaxReplicas refuse.
func (tb *DAGTestbed) AddReplica(poolName string) (int, bool) {
	p, ok := tb.byName[poolName]
	if !ok {
		return 0, false
	}
	max := p.cfg.MaxReplicas
	if max <= 0 {
		max = p.cfg.Replicas
	}
	if p.active() >= max {
		return p.active(), false
	}
	for i := len(p.reps) - 1; i >= 0; i-- {
		r := p.reps[i]
		if !r.draining {
			continue
		}
		r.draining = false
		t := r.t
		t.stopped = false
		// The housekeeping daemon restarts now; credit does not accrue
		// over the drained gap.
		t.bgAccrued = tb.engine.Now()
		if t.cfg.BackgroundRate > 0 {
			tb.engine.Schedule(0, func() {
				if !t.cpuBusy {
					t.cpuBusy = true
					t.startNext()
				}
			})
		}
		tb.scaleUps++
		return p.active(), true
	}
	p.reps = append(p.reps, &replica{t: newTier(p.cfg.Slot, p.cfg.Tier, tb.engine, tb.rng.Fork())})
	tb.scaleUps++
	return p.active(), true
}

// RemoveReplica drains the named pool's most recently added active
// replica: it leaves the routing rotation immediately and stops its
// housekeeping, but finishes whatever requests it holds. It reports the
// new active count and whether anything changed; pools at MinReplicas
// (or one machine) refuse.
func (tb *DAGTestbed) RemoveReplica(poolName string) (int, bool) {
	p, ok := tb.byName[poolName]
	if !ok {
		return 0, false
	}
	min := p.cfg.MinReplicas
	if min < 1 {
		min = 1
	}
	if p.active() <= min {
		return p.active(), false
	}
	for i := len(p.reps) - 1; i >= 0; i-- {
		r := p.reps[i]
		if r.draining {
			continue
		}
		r.draining = true
		r.t.stopped = true
		tb.scaleDowns++
		return p.active(), true
	}
	return p.active(), false
}

// ScaleEvents returns the lifetime count of replica additions and
// removals.
func (tb *DAGTestbed) ScaleEvents() (ups, downs int) {
	return tb.scaleUps, tb.scaleDowns
}

// Replicas returns the named pool's active replica count (0 for an
// unknown pool).
func (tb *DAGTestbed) Replicas(poolName string) int {
	if p, ok := tb.byName[poolName]; ok {
		return p.active()
	}
	return 0
}

// PoolLoads returns each pool's offered load versus capacity over the
// last completed interval, in pool declaration order. Before the first
// RunInterval it returns zero loads at current capacity.
func (tb *DAGTestbed) PoolLoads() []PoolLoad {
	if tb.lastLoads != nil {
		return append([]PoolLoad(nil), tb.lastLoads...)
	}
	loads := make([]PoolLoad, len(tb.pools))
	for i, p := range tb.pools {
		loads[i] = PoolLoad{
			Pool: p.cfg.Name, Slot: p.cfg.Slot, Kind: p.cfg.Kind,
			Replicas: p.active(), Capacity: p.capacity(),
		}
	}
	return loads
}

// LifetimeLoads returns each pool's mean offered load over the whole run
// against its current capacity.
func (tb *DAGTestbed) LifetimeLoads() []PoolLoad {
	elapsed := tb.engine.Now()
	loads := make([]PoolLoad, len(tb.pools))
	for i, p := range tb.pools {
		l := PoolLoad{
			Pool: p.cfg.Name, Slot: p.cfg.Slot, Kind: p.cfg.Kind,
			Replicas: p.active(), Capacity: p.capacity(),
		}
		if elapsed > 0 {
			l.Offered = p.totalOffered / elapsed
		}
		loads[i] = l
	}
	return loads
}

// Bottleneck identifies the bottleneck pool — the maximal offered-load/
// capacity ratio over the whole run (BottleneckPool's rule).
func (tb *DAGTestbed) Bottleneck() string {
	loads := tb.LifetimeLoads()
	i := BottleneckPool(loads)
	if i < 0 {
		return ""
	}
	return loads[i].Pool
}

// PoolSnapshot is one pool's interval telemetry: the counter vector of
// every replica (draining machines included, flagged), plus the pool's
// offered load and active capacity.
type PoolSnapshot struct {
	Pool string
	Kind PoolKind
	Slot TierID
	// Replicas holds the per-replica counter vectors; Draining flags the
	// machines that are finishing in-flight work outside the rotation.
	Replicas []TierSnapshot
	Draining []bool
	Active   int
	// Offered is the demand offered to the pool over the interval, in
	// demand seconds per second; Capacity what its active replicas can
	// execute.
	Offered  float64
	Capacity float64
}

// Load converts the snapshot's offered/capacity pair to a PoolLoad.
func (ps PoolSnapshot) Load() PoolLoad {
	return PoolLoad{
		Pool: ps.Pool, Slot: ps.Slot, Kind: ps.Kind,
		Replicas: ps.Active, Offered: ps.Offered, Capacity: ps.Capacity,
	}
}

// DAGSnapshot is the DAG testbed's telemetry for one sampling interval.
type DAGSnapshot struct {
	Time  float64
	Pools []PoolSnapshot

	Arrivals      int
	Completions   int
	Rejections    int
	ClassArrivals [tpcw.NumInteractions]int
	MeanRT        float64
	MaxRT         float64

	InFlight  int
	ActiveEBs int
}

// Legacy folds the DAG snapshot into the fixed two-slot Snapshot the
// metric collectors consume: each slot carries the replica-mean counters
// of the (non-draining) replicas of every pool feeding it. A slot backed
// by exactly one replica is copied bit for bit — which is what makes the
// degenerate two-tier DAG's telemetry byte-identical to the legacy
// testbed's.
func (s DAGSnapshot) Legacy() Snapshot {
	out := Snapshot{
		Time:          s.Time,
		Arrivals:      s.Arrivals,
		Completions:   s.Completions,
		Rejections:    s.Rejections,
		ClassArrivals: s.ClassArrivals,
		MeanRT:        s.MeanRT,
		MaxRT:         s.MaxRT,
		InFlight:      s.InFlight,
		ActiveEBs:     s.ActiveEBs,
	}
	var bySlot [NumTiers][]TierSnapshot
	for _, p := range s.Pools {
		if p.Slot < 0 || p.Slot >= NumTiers {
			continue
		}
		for i, ts := range p.Replicas {
			if p.Draining[i] {
				continue
			}
			bySlot[p.Slot] = append(bySlot[p.Slot], ts)
		}
	}
	for slot, reps := range bySlot {
		switch len(reps) {
		case 0:
			out.Tiers[slot] = TierSnapshot{Tier: TierID(slot), MeanDilation: 1}
		case 1:
			ts := reps[0]
			ts.Tier = TierID(slot)
			out.Tiers[slot] = ts
		default:
			out.Tiers[slot] = meanTierSnapshot(TierID(slot), reps)
		}
	}
	return out
}

// meanTierSnapshot averages n replica snapshots into one machine-mean
// snapshot: flows and gauges divide by n (integers rounding to nearest),
// the dilation and miss-ratio diagnostics weight by busy time.
func meanTierSnapshot(id TierID, reps []TierSnapshot) TierSnapshot {
	n := float64(len(reps))
	var out TierSnapshot
	out.Tier = id
	var dilSum, missSum float64
	for _, ts := range reps {
		out.BusySeconds += ts.BusySeconds
		out.FgBusySeconds += ts.FgBusySeconds
		out.Instructions += ts.Instructions
		out.Cycles += ts.Cycles
		out.L2Refs += ts.L2Refs
		out.L2Misses += ts.L2Misses
		out.CtxSwitches += ts.CtxSwitches
		out.ITLBMisses += ts.ITLBMisses
		out.Branches += ts.Branches
		out.BranchMiss += ts.BranchMiss
		out.Bursts += ts.Bursts
		out.RunQueue += ts.RunQueue
		out.BoundWorkers += ts.BoundWorkers
		out.WaitQueue += ts.WaitQueue
		out.WorkingSetMB += ts.WorkingSetMB
		dilSum += ts.MeanDilation * ts.BusySeconds
		missSum += ts.MeanMissRatio * ts.BusySeconds
	}
	out.BusySeconds /= n
	out.FgBusySeconds /= n
	out.Instructions /= n
	out.Cycles /= n
	out.L2Refs /= n
	out.L2Misses /= n
	out.CtxSwitches /= n
	out.ITLBMisses /= n
	out.Branches /= n
	out.BranchMiss /= n
	out.WorkingSetMB /= n
	out.Bursts = roundDiv(out.Bursts, len(reps))
	out.RunQueue = roundDiv(out.RunQueue, len(reps))
	out.BoundWorkers = roundDiv(out.BoundWorkers, len(reps))
	out.WaitQueue = roundDiv(out.WaitQueue, len(reps))
	if out.BusySeconds > 0 {
		out.MeanDilation = dilSum / (out.BusySeconds * n)
		out.MeanMissRatio = missSum / (out.BusySeconds * n)
	} else {
		out.MeanDilation = 1
	}
	return out
}

// roundDiv divides non-negative integers rounding to nearest.
func roundDiv(a, n int) int {
	return (a + n/2) / n
}

// RunInterval advances the simulation dt seconds and returns the
// interval's telemetry.
func (tb *DAGTestbed) RunInterval(dt float64) DAGSnapshot {
	target := tb.engine.Now() + dt
	tb.engine.At(target, func() {})
	tb.engine.RunUntil(target)
	return tb.sample(dt)
}

// RunIntervalLegacy advances dt seconds and returns the interval's
// telemetry already folded to the two-slot legacy layout — the drop-in
// signature trace generation uses for either testbed.
func (tb *DAGTestbed) RunIntervalLegacy(dt float64) Snapshot {
	return tb.RunInterval(dt).Legacy()
}

// sample collects and resets interval accounting.
func (tb *DAGTestbed) sample(dt float64) DAGSnapshot {
	s := DAGSnapshot{
		Time:          tb.engine.Now(),
		Arrivals:      tb.arrivals,
		Completions:   tb.completions,
		Rejections:    tb.rejections,
		ClassArrivals: tb.classArrivals,
		MaxRT:         tb.rtMax,
		InFlight:      tb.inFlight,
	}
	if tb.completions > 0 {
		s.MeanRT = tb.rtSum / float64(tb.completions)
	}
	tb.lastLoads = tb.lastLoads[:0]
	for _, p := range tb.pools {
		ps := PoolSnapshot{
			Pool:     p.cfg.Name,
			Kind:     p.cfg.Kind,
			Slot:     p.cfg.Slot,
			Active:   p.active(),
			Capacity: p.capacity(),
		}
		if dt > 0 {
			ps.Offered = p.offered / dt
		}
		for _, r := range p.reps {
			ps.Replicas = append(ps.Replicas, r.t.snapshot())
			ps.Draining = append(ps.Draining, r.draining)
		}
		p.offered = 0
		s.Pools = append(s.Pools, ps)
		tb.lastLoads = append(tb.lastLoads, ps.Load())
	}
	for _, r := range tb.browsers {
		if r.alive {
			s.ActiveEBs++
		}
	}
	tb.arrivals, tb.completions, tb.rejections = 0, 0, 0
	tb.classArrivals = [tpcw.NumInteractions]int{}
	tb.rtSum, tb.rtMax = 0, 0
	return s
}

// Conservation returns lifetime totals for invariant checking.
func (tb *DAGTestbed) Conservation() (arrivals, completions, rejections, inFlight int) {
	return tb.totalArrivals, tb.totalCompletions, tb.totalRejections, tb.inFlight
}
