package server

import (
	"testing"
	"testing/quick"

	"hpcap/internal/tpcw"
)

func TestDefaultConfigValid(t *testing.T) {
	if errs := DefaultConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultConfig invalid: %v", errs)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero app workers", func(c *Config) { c.App.MaxWorkers = 0 }},
		{"negative db workers", func(c *Config) { c.DB.MaxWorkers = -3 }},
		{"zero speed", func(c *Config) { c.App.Machine.Speed = 0 }},
		{"zero clock", func(c *Config) { c.DB.Machine.ClockHz = 0 }},
		{"zero ipc", func(c *Config) { c.App.Machine.BaseIPC = 0 }},
		{"zero instr rate", func(c *Config) { c.DB.Machine.InstrPerDemandSec = 0 }},
		{"miss max below base", func(c *Config) { c.App.MaxMissRatio = c.App.BaseMissRatio / 2 }},
		{"miss ratio one", func(c *Config) { c.DB.MaxMissRatio = 1.0 }},
		{"negative base miss", func(c *Config) { c.App.BaseMissRatio = -0.1 }},
		{"zero thrash", func(c *Config) { c.DB.ThrashMB = 0 }},
		{"negative hop", func(c *Config) { c.NetworkHop = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if errs := cfg.Validate(); len(errs) == 0 {
				t.Errorf("%s not rejected", tt.name)
			}
		})
	}
}

func TestNewTestbedRejectsBadInput(t *testing.T) {
	bad := DefaultConfig()
	bad.App.MaxWorkers = 0
	if _, err := NewTestbed(bad, tpcw.Steady(tpcw.Browsing(), 10, 100)); err == nil {
		t.Error("invalid config not rejected")
	}
	if _, err := NewTestbed(DefaultConfig(), tpcw.Schedule{}); err == nil {
		t.Error("empty schedule not rejected")
	}
}

func TestStartTwiceErrors(t *testing.T) {
	tb, err := NewTestbed(DefaultConfig(), tpcw.Steady(tpcw.Browsing(), 10, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err == nil {
		t.Error("second Start not rejected")
	}
}

func TestTierIDString(t *testing.T) {
	if TierApp.String() != "app" || TierDB.String() != "db" {
		t.Error("tier names wrong")
	}
	if TierID(9).String() != "tier?" {
		t.Error("unknown tier name wrong")
	}
}

// runFor advances the testbed and aggregates n seconds of telemetry.
func runFor(t *testing.T, tb *Testbed, seconds int) (thr, meanRT, appUtil, dbUtil, appMiss, dbMiss float64) {
	t.Helper()
	var completions int
	var rtWeighted float64
	var appBusy, dbBusy, appMissSum, dbMissSum float64
	for i := 0; i < seconds; i++ {
		s := tb.RunInterval(1)
		completions += s.Completions
		rtWeighted += s.MeanRT * float64(s.Completions)
		appBusy += s.Tiers[TierApp].BusySeconds
		dbBusy += s.Tiers[TierDB].BusySeconds
		appMissSum += s.Tiers[TierApp].MeanMissRatio
		dbMissSum += s.Tiers[TierDB].MeanMissRatio
	}
	thr = float64(completions) / float64(seconds)
	if completions > 0 {
		meanRT = rtWeighted / float64(completions)
	}
	appUtil = appBusy / float64(seconds)
	dbUtil = dbBusy / float64(seconds)
	appMiss = appMissSum / float64(seconds)
	dbMiss = dbMissSum / float64(seconds)
	return thr, meanRT, appUtil, dbUtil, appMiss, dbMiss
}

func TestLightLoadHealthy(t *testing.T) {
	tb, err := NewTestbed(DefaultConfig(), tpcw.Steady(tpcw.Shopping(), 50, 400))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	tb.RunInterval(100) // warm-up
	thr, rt, appU, dbU, _, _ := runFor(t, tb, 300)

	// Little's law: 50 EBs, ~7 s think, small RT → ≈7 interactions/s.
	if thr < 5.5 || thr > 8.5 {
		t.Errorf("throughput = %v/s, want ≈7", thr)
	}
	if rt > 0.15 {
		t.Errorf("mean RT = %v, want well under 150 ms at light load", rt)
	}
	// Utilization includes idle-priority background work (log rotation on
	// the app tier; InnoDB housekeeping soaking ≈0.6 CPU on the DB), so a
	// lightly loaded site still shows a busy database CPU.
	if appU > 0.45 {
		t.Errorf("app utilization = %v, want light", appU)
	}
	if dbU < 0.5 || dbU > 0.95 {
		t.Errorf("db utilization = %v, want dominated by background work", dbU)
	}
}

func TestOrderingOverloadHitsAppTier(t *testing.T) {
	// Push far past the app tier's saturation point with the ordering mix.
	tb, err := NewTestbed(DefaultConfig(), tpcw.Steady(tpcw.Ordering(), 600, 700))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	tb.RunInterval(250) // allow the avalanche to settle
	thr, rt, appU, dbU, appMiss, dbMiss := runFor(t, tb, 300)

	if appU < 0.97 {
		t.Errorf("app utilization = %v, want pegged ≈1", appU)
	}
	if dbU > appU-0.05 {
		t.Errorf("db utilization = %v, want clearly below the app tier's %v", dbU, appU)
	}
	if rt < 1.0 {
		t.Errorf("mean RT = %v, want severely inflated", rt)
	}
	if appMiss < 0.06 {
		t.Errorf("app miss ratio = %v, want inflated by context-switch pollution", appMiss)
	}
	if dbMiss > 0.1 {
		t.Errorf("db miss ratio = %v, want near baseline", dbMiss)
	}
	// Throughput must be below the healthy saturation peak (≈48/s).
	if thr > 40 {
		t.Errorf("overloaded throughput = %v/s, want degraded below peak", thr)
	}
	app := tb.RunInterval(1).Tiers[TierApp]
	if app.RunQueue < 50 {
		t.Errorf("app run queue = %d, want long under overload", app.RunQueue)
	}
}

func TestBrowsingOverloadHitsDBTier(t *testing.T) {
	tb, err := NewTestbed(DefaultConfig(), tpcw.Steady(tpcw.Browsing(), 450, 700))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	tb.RunInterval(250)
	_, rt, appU, dbU, appMiss, dbMiss := runFor(t, tb, 300)

	if dbU < 0.97 {
		t.Errorf("db utilization = %v, want pegged ≈1", dbU)
	}
	if appU > 0.5 {
		t.Errorf("app utilization = %v, want low (threads blocked, not running)", appU)
	}
	if rt < 1.0 {
		t.Errorf("mean RT = %v, want severely inflated", rt)
	}
	if dbMiss < 0.2 {
		t.Errorf("db miss ratio = %v, want thrashing", dbMiss)
	}
	if appMiss > 0.05 {
		t.Errorf("app miss ratio = %v, want near baseline", appMiss)
	}
	s := tb.RunInterval(1)
	// The paper's central asymmetry: under DB-bottleneck overload neither
	// machine's run queue betrays the overload. App threads are blocked on
	// the database; thrashed DB queries are asleep on buffer-pool locks.
	if q := s.Tiers[TierApp].RunQueue; q > 20 {
		t.Errorf("app run queue = %d, want short under DB-bottleneck overload", q)
	}
	if q := s.Tiers[TierDB].RunQueue; q > 10 {
		t.Errorf("db run queue = %d, want lock-blocking to hide most queued conns", q)
	}
	if b := s.Tiers[TierDB].BoundWorkers; b < 7 {
		t.Errorf("db bound connections = %d, want the pool pinned", b)
	}
}

func TestBottleneckShiftsWithMix(t *testing.T) {
	// Interleaving browsing and ordering at a level that overloads both
	// must move the busier tier back and forth.
	sched := tpcw.Interleaved(tpcw.Browsing(), tpcw.Ordering(), 600, 400, 2)
	tb, err := NewTestbed(DefaultConfig(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	tb.RunInterval(200)
	_, _, appU1, dbU1, _, _ := runFor(t, tb, 150)
	tb.RunInterval(100) // into the ordering phase
	tb.RunInterval(150) // let the backlog of heavy queries drain
	_, _, appU2, dbU2, _, _ := runFor(t, tb, 150)

	if dbU1 < appU1 {
		t.Errorf("browsing phase: db=%v app=%v, want DB busier", dbU1, appU1)
	}
	if appU2 < dbU2 {
		t.Errorf("ordering phase: app=%v db=%v, want app busier", appU2, dbU2)
	}
}

func TestConservationProperty(t *testing.T) {
	f := func(seed int64, ebsRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		ebs := int(ebsRaw)%200 + 5
		tb, err := NewTestbed(cfg, tpcw.Steady(tpcw.Shopping(), ebs, 200))
		if err != nil {
			return false
		}
		if err := tb.Start(); err != nil {
			return false
		}
		tb.RunInterval(150)
		arr, comp, rej, inflight := tb.Conservation()
		return arr == comp+rej+inflight && inflight >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Snapshot {
		tb, err := NewTestbed(DefaultConfig(), tpcw.Steady(tpcw.Shopping(), 80, 120))
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Start(); err != nil {
			t.Fatal(err)
		}
		out := make([]Snapshot, 0, 120)
		for i := 0; i < 120; i++ {
			out = append(out, tb.RunInterval(1))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("snapshots diverge at %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestPhaseEBAdjustment(t *testing.T) {
	sched := tpcw.Schedule{Phases: []tpcw.Phase{
		{Mix: tpcw.Shopping(), EBs: 20, Duration: 50},
		{Mix: tpcw.Shopping(), EBs: 60, Duration: 50},
		{Mix: tpcw.Shopping(), EBs: 10, Duration: 50},
	}}
	tb, err := NewTestbed(DefaultConfig(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	s := tb.RunInterval(25)
	if s.ActiveEBs != 20 {
		t.Errorf("phase 1 ActiveEBs = %d, want 20", s.ActiveEBs)
	}
	tb.RunInterval(50)
	s = tb.RunInterval(1)
	if s.ActiveEBs != 60 {
		t.Errorf("phase 2 ActiveEBs = %d, want 60", s.ActiveEBs)
	}
	tb.RunInterval(50)
	s = tb.RunInterval(1)
	if s.ActiveEBs != 10 {
		t.Errorf("phase 3 ActiveEBs = %d, want 10", s.ActiveEBs)
	}
}

func TestAdmissionControlRejects(t *testing.T) {
	tb, err := NewTestbed(DefaultConfig(), tpcw.Steady(tpcw.Shopping(), 50, 200))
	if err != nil {
		t.Fatal(err)
	}
	tb.SetAdmission(func(AdmissionState) bool { return false })
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	var completions, rejections int
	for i := 0; i < 150; i++ {
		s := tb.RunInterval(1)
		completions += s.Completions
		rejections += s.Rejections
	}
	if completions != 0 {
		t.Errorf("completions = %d with reject-all admission", completions)
	}
	if rejections == 0 {
		t.Error("no rejections recorded")
	}
	arr, comp, rej, inflight := tb.Conservation()
	if arr != comp+rej+inflight {
		t.Errorf("conservation violated: %d != %d+%d+%d", arr, comp, rej, inflight)
	}
}

func TestSnapshotFlowsReset(t *testing.T) {
	tb, err := NewTestbed(DefaultConfig(), tpcw.Steady(tpcw.Shopping(), 40, 400))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	tb.RunInterval(60)
	a := tb.RunInterval(10)
	b := tb.RunInterval(10)
	// Flows must be per-interval, not cumulative: two consecutive
	// same-length intervals at steady state have similar, not doubled,
	// busy seconds.
	if b.Tiers[TierApp].BusySeconds > a.Tiers[TierApp].BusySeconds*3+0.5 {
		t.Errorf("busy seconds look cumulative: %v then %v",
			a.Tiers[TierApp].BusySeconds, b.Tiers[TierApp].BusySeconds)
	}
	if b.Time-a.Time != 10 {
		t.Errorf("interval timing wrong: %v -> %v", a.Time, b.Time)
	}
}

func TestAddPeriodicLoad(t *testing.T) {
	// An idle testbed with a periodic 40 ms burst every second shows ≈4%
	// utilization on the loaded tier.
	cfg := DefaultConfig()
	cfg.App.BackgroundRate = 0 // isolate the periodic load
	tb, err := NewTestbed(cfg, tpcw.Steady(tpcw.Shopping(), 0, 200))
	if err != nil {
		t.Fatal(err)
	}
	tb.AddPeriodicLoad(TierApp, 1.0, 0.040)
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	tb.RunInterval(10)
	var busy float64
	for i := 0; i < 100; i++ {
		busy += tb.RunInterval(1).Tiers[TierApp].BusySeconds
	}
	util := busy / 100
	if util < 0.03 || util > 0.06 {
		t.Errorf("periodic-load utilization = %v, want ≈0.04", util)
	}
}

func TestMeanRTZeroWithoutCompletions(t *testing.T) {
	tb, err := NewTestbed(DefaultConfig(), tpcw.Steady(tpcw.Shopping(), 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	s := tb.RunInterval(5)
	if s.MeanRT != 0 || s.Completions != 0 {
		t.Errorf("idle snapshot has MeanRT=%v Completions=%d", s.MeanRT, s.Completions)
	}
}

// TestClassArrivalsAccounting checks the per-class arrival histogram: it
// partitions the interval's arrivals, resets between samples, and follows
// the offered mix when a schedule shifts mid-run.
func TestClassArrivalsAccounting(t *testing.T) {
	sched := tpcw.Steady(tpcw.Browsing(), 80, 600).ShiftAt(300, tpcw.Ordering())
	tb, err := NewTestbed(DefaultConfig(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	orderShare := func(s Snapshot) float64 {
		total, order := 0, 0
		for c, n := range s.ClassArrivals {
			total += n
			if (tpcw.Interaction(c) + tpcw.Home).IsOrder() {
				order += n
			}
		}
		if total != s.Arrivals {
			t.Errorf("class counts sum to %d, Arrivals = %d", total, s.Arrivals)
		}
		if total == 0 {
			t.Fatal("interval saw no arrivals")
		}
		return float64(order) / float64(total)
	}

	tb.RunInterval(60) // warm-up
	browse := orderShare(tb.RunInterval(200))
	next := tb.RunInterval(1)
	for c, n := range next.ClassArrivals {
		if n < 0 || n > next.Arrivals {
			t.Errorf("class %d count %d out of range after reset", c, n)
		}
	}
	tb.RunInterval(99) // cross the shift, discard the mixed interval
	order := orderShare(tb.RunInterval(200))

	// Browsing is 5% order-class, ordering 50%.
	if browse > 0.15 {
		t.Errorf("browsing phase order share = %v, want ≈0.05", browse)
	}
	if order < 0.35 {
		t.Errorf("ordering phase order share = %v, want ≈0.5", order)
	}
}
