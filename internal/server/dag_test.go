package server

import (
	"reflect"
	"testing"

	"hpcap/internal/tpcw"
)

// TestDAGSnapshotEquivalence pins the degenerate-DAG contract at the
// telemetry level: the two-tier topology replays the legacy testbed
// snapshot for snapshot, bit for bit, through load swings and admission
// rejections. The experiment-layer differential test extends this to the
// chaos and fusion golden transcripts.
func TestDAGSnapshotEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	sched := tpcw.Concat(
		tpcw.Steady(tpcw.Browsing(), 120, 30),
		tpcw.Ramp(tpcw.Ordering(), 120, 900, 4, 10),
		tpcw.Steady(tpcw.Shopping(), 200, 30),
	)
	admit := func(s AdmissionState) bool { return s.WaitQueue < 60 }

	legacy, err := NewTestbed(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	legacy.SetAdmission(admit)
	if err := legacy.Start(); err != nil {
		t.Fatal(err)
	}

	dag, err := NewDAGTestbed(TwoTierTopology(cfg), sched)
	if err != nil {
		t.Fatal(err)
	}
	dag.SetAdmission(admit)
	if err := dag.Start(); err != nil {
		t.Fatal(err)
	}

	for sec := 0; sec < 100; sec++ {
		want := legacy.RunInterval(1)
		got := dag.RunIntervalLegacy(1)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("second %d: DAG snapshot diverged from legacy\nlegacy: %+v\ndag:    %+v", sec, want, got)
		}
	}
	la, lc, lr, lf := legacy.Conservation()
	da, dc, dr, df := dag.Conservation()
	if la != da || lc != dc || lr != dr || lf != df {
		t.Fatalf("conservation diverged: legacy (%d,%d,%d,%d) dag (%d,%d,%d,%d)",
			la, lc, lr, lf, da, dc, dr, df)
	}
}

func TestDAGRejectsBadInput(t *testing.T) {
	bad := DefaultTopologyConfig()
	bad.Entry = "ghost"
	if _, err := NewDAGTestbed(bad, tpcw.Steady(tpcw.Browsing(), 10, 100)); err == nil {
		t.Error("invalid topology not rejected")
	}
	if _, err := NewDAGTestbed(DefaultTopologyConfig(), tpcw.Schedule{}); err == nil {
		t.Error("empty schedule not rejected")
	}
	tb, err := NewDAGTestbed(DefaultTopologyConfig(), tpcw.Steady(tpcw.Browsing(), 10, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err == nil {
		t.Error("second Start not rejected")
	}
}

func TestDAGConservation(t *testing.T) {
	tb, err := NewDAGTestbed(DefaultTopologyConfig(), tpcw.Steady(tpcw.Shopping(), 300, 60))
	if err != nil {
		t.Fatal(err)
	}
	tb.SetAdmission(func(s AdmissionState) bool { return s.WaitQueue < 30 })
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		tb.RunInterval(1)
	}
	arr, comp, rej, inflight := tb.Conservation()
	if arr != comp+rej+inflight {
		t.Errorf("conservation violated: %d arrivals != %d completions + %d rejections + %d in flight",
			arr, comp, rej, inflight)
	}
	if comp == 0 {
		t.Error("no completions")
	}
}

func TestDAGDeterminism(t *testing.T) {
	run := func() []DAGSnapshot {
		tb, err := NewDAGTestbed(DefaultTopologyConfig(), tpcw.Steady(tpcw.Browsing(), 150, 30))
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Start(); err != nil {
			t.Fatal(err)
		}
		var out []DAGSnapshot
		for i := 0; i < 30; i++ {
			out = append(out, tb.RunInterval(1))
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("identical DAG runs diverged")
	}
}

func TestAddRemoveReplica(t *testing.T) {
	topo := DefaultTopologyConfig() // app 2 of [1,6], cache 1 of [1,2], db 2 of [1,4]
	tb, err := NewDAGTestbed(topo, tpcw.Steady(tpcw.Shopping(), 200, 120))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	tb.RunInterval(5)

	if n := tb.Replicas("app"); n != 2 {
		t.Fatalf("app starts with %d replicas, want 2", n)
	}
	if n, ok := tb.AddReplica("app"); !ok || n != 3 {
		t.Fatalf("AddReplica(app) = (%d,%v), want (3,true)", n, ok)
	}
	// Cache is at MaxReplicas 2 after one add; the next add refuses.
	if n, ok := tb.AddReplica("cache"); !ok || n != 2 {
		t.Fatalf("AddReplica(cache) = (%d,%v), want (2,true)", n, ok)
	}
	if _, ok := tb.AddReplica("cache"); ok {
		t.Error("AddReplica above MaxReplicas not refused")
	}
	// Unknown pools refuse.
	if _, ok := tb.AddReplica("ghost"); ok {
		t.Error("AddReplica(ghost) not refused")
	}
	if _, ok := tb.RemoveReplica("ghost"); ok {
		t.Error("RemoveReplica(ghost) not refused")
	}

	tb.RunInterval(5)
	if n, ok := tb.RemoveReplica("app"); !ok || n != 2 {
		t.Fatalf("RemoveReplica(app) = (%d,%v), want (2,true)", n, ok)
	}
	// The drained replica stays in the snapshot, flagged, until revived.
	s := tb.RunInterval(5)
	var appSnap PoolSnapshot
	for _, ps := range s.Pools {
		if ps.Pool == "app" {
			appSnap = ps
		}
	}
	if len(appSnap.Replicas) != 3 || appSnap.Active != 2 {
		t.Fatalf("app snapshot has %d replicas (%d active), want 3 (2 active)",
			len(appSnap.Replicas), appSnap.Active)
	}
	drained := 0
	for _, d := range appSnap.Draining {
		if d {
			drained++
		}
	}
	if drained != 1 {
		t.Fatalf("app snapshot flags %d draining replicas, want 1", drained)
	}
	if appSnap.Capacity != 2*topo.Pools[0].Tier.Machine.Speed {
		t.Errorf("drained replica still counted in capacity: %v", appSnap.Capacity)
	}

	// Scaling down to MinReplicas stops; reviving reuses the drained
	// machine rather than growing the slice.
	if n, ok := tb.RemoveReplica("app"); !ok || n != 1 {
		t.Fatalf("RemoveReplica(app) = (%d,%v), want (1,true)", n, ok)
	}
	if _, ok := tb.RemoveReplica("app"); ok {
		t.Error("RemoveReplica below MinReplicas not refused")
	}
	if n, ok := tb.AddReplica("app"); !ok || n != 2 {
		t.Fatalf("revive AddReplica(app) = (%d,%v), want (2,true)", n, ok)
	}
	s = tb.RunInterval(5)
	for _, ps := range s.Pools {
		if ps.Pool == "app" && len(ps.Replicas) != 3 {
			t.Errorf("revive grew the replica slice to %d, want reuse at 3", len(ps.Replicas))
		}
	}
	ups, downs := tb.ScaleEvents()
	if ups != 3 || downs != 2 {
		t.Errorf("scale events = (%d up, %d down), want (3, 2)", ups, downs)
	}
	arr, comp, rej, inflight := tb.Conservation()
	if arr != comp+rej+inflight {
		t.Errorf("conservation violated across scaling: %d != %d+%d+%d", arr, comp, rej, inflight)
	}
}

// meanMixDemand returns the mix-weighted mean profile demand: app demand
// for front pools, DB demand otherwise.
func meanMixDemand(mix tpcw.Mix, front bool) float64 {
	profiles := tpcw.DefaultProfiles()
	var sum float64
	for _, it := range tpcw.Interactions() {
		p := profiles[it]
		d := p.DBDemand
		if front {
			d = p.AppDemand
		}
		sum += mix.Weights[it] * d
	}
	return sum
}

// TestBottleneckPoolProperty checks the bottleneck-pool rule on seeded
// random chain DAGs (2–6 tiers, 1–8 replicas each): the pool the testbed
// identifies from measured offered load is the one an analytic
// visit-fraction model predicts to have the maximal load/capacity ratio,
// and removing a replica from a non-bottleneck pool never changes the
// verdict as long as the removal does not itself create a new bottleneck.
func TestBottleneckPoolProperty(t *testing.T) {
	mix := tpcw.Browsing()
	base := DefaultConfig()
	for seed := int64(1); seed <= 10; seed++ {
		// A tiny deterministic PRNG so the cases are stable across runs.
		state := uint64(seed)*2654435761 + 12345
		rnd := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(n))
		}

		n := 2 + rnd(5) // 2..6 pools
		topo := TopologyConfig{NetworkHop: base.NetworkHop, Seed: seed}
		names := []string{"app", "t1", "t2", "t3", "t4", "t5"}
		for i := 0; i < n; i++ {
			p := PoolConfig{
				Name:       names[i],
				Replicas:   1 + rnd(8),
				Tier:       base.App,
				DemandFrac: 0.25 + float64(rnd(8))*0.25,
				WorkFrac:   0.5,
			}
			// Deep pools get generous worker bounds so queueing in one
			// pool does not mask demand offered to the next.
			p.Tier.MaxWorkers = 400
			p.Tier.Machine.Speed = 0.5 + float64(rnd(4))*0.5
			switch {
			case i == 0:
				p.Kind = PoolFront
				p.Slot = TierApp
			case i < n-1 && rnd(3) == 0:
				p.Kind = PoolCache
				p.Slot = TierDB
				p.HitRatio = float64(rnd(8)) / 10
			default:
				p.Kind = PoolStore
				p.Slot = TierDB
			}
			if i < n-1 {
				p.Downstream = []string{names[i+1]}
			}
			topo.Pools = append(topo.Pools, p)
		}
		topo.Entry = "app"
		if errs := topo.Validate(); len(errs) > 0 {
			t.Fatalf("seed %d: generated topology invalid: %v", seed, errs)
		}

		// Analytic per-request demand at each pool: visit fraction times
		// demand fraction times the mix-mean profile demand. The arrival
		// rate cancels out of the ratio comparison.
		vf := topo.VisitFractions()
		ratios := make([]float64, n)
		for i, p := range topo.Pools {
			d := vf[p.Name] * p.DemandFrac * meanMixDemand(mix, p.Kind == PoolFront)
			ratios[i] = d / (float64(p.Replicas) * p.Tier.Machine.Speed)
		}
		best, second := -1, -1
		for i, r := range ratios {
			if best < 0 || r > ratios[best] {
				second = best
				best = i
			} else if second < 0 || r > ratios[second] {
				second = i
			}
		}
		if second >= 0 && ratios[second] > 0.8*ratios[best] {
			// Ambiguous case: sampling noise could legitimately flip the
			// verdict. The property only holds for clear bottlenecks.
			continue
		}

		tb, err := NewDAGTestbed(topo, tpcw.Steady(mix, 120, 60))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tb.Start(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 0; i < 40; i++ {
			tb.RunInterval(1)
		}

		loads := tb.LifetimeLoads()
		got := BottleneckPool(loads)
		if got != best {
			t.Errorf("seed %d: measured bottleneck %q (ratio %v), analytic model predicts %q (ratio %v)\nloads: %+v",
				seed, loads[got].Pool, loads[got].Ratio(), topo.Pools[best].Name, ratios[best], loads)
			continue
		}
		// The identified pool is by definition the max-ratio pool; check
		// the invariant explicitly anyway.
		for i, l := range loads {
			if l.Ratio() > loads[got].Ratio() {
				t.Errorf("seed %d: pool %d ratio %v exceeds identified bottleneck %v",
					seed, i, l.Ratio(), loads[got].Ratio())
			}
		}
		// Removing a replica from any non-bottleneck pool must not move
		// the verdict, provided the shrunken pool stays below the
		// bottleneck's ratio.
		for i := range loads {
			if i == got || loads[i].Replicas <= 1 {
				continue
			}
			shrunk := append([]PoolLoad(nil), loads...)
			shrunk[i].Replicas--
			shrunk[i].Capacity = loads[i].Capacity * float64(shrunk[i].Replicas) / float64(loads[i].Replicas)
			if shrunk[i].Ratio() >= loads[got].Ratio() {
				continue // the removal created a new bottleneck; verdict may move
			}
			if after := BottleneckPool(shrunk); after != got {
				t.Errorf("seed %d: removing a replica from non-bottleneck pool %q moved the verdict %q -> %q",
					seed, loads[i].Pool, loads[got].Pool, shrunk[after].Pool)
			}
		}
		if name := tb.Bottleneck(); name != loads[got].Pool {
			t.Errorf("seed %d: Bottleneck() = %q, want %q", seed, name, loads[got].Pool)
		}
	}
}
