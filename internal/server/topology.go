package server

import (
	"fmt"
	"math"
)

// PoolKind classifies a replica pool's role in the request path.
type PoolKind int

// The pool roles of a tier DAG.
const (
	// PoolFront is a request-entry pool (the replicated application
	// tier behind the load balancer): its workers are held across every
	// downstream call, like the legacy app tier's servlet threads.
	PoolFront PoolKind = iota + 1
	// PoolCache is a look-aside cache pool: each visit is served locally
	// with probability HitRatio; only misses descend into the pool's
	// downstream tiers.
	PoolCache
	// PoolStore is a backing-store pool (database shards): one burst per
	// worker hold, the legacy DB tier's connection pattern.
	PoolStore
)

// String returns the kind's topology-text spelling.
func (k PoolKind) String() string {
	switch k {
	case PoolFront:
		return "front"
	case PoolCache:
		return "cache"
	case PoolStore:
		return "store"
	default:
		return fmt.Sprintf("PoolKind(%d)", int(k))
	}
}

// PoolConfig describes one replica pool of a tier DAG: Replicas identical
// machines behind a round-robin balancer, each running the pool's
// TierConfig.
type PoolConfig struct {
	Name string
	Kind PoolKind
	// Slot is the monitor tier slot this pool's counters feed. The
	// metric collectors, synopses, and serving pipeline all see the
	// fixed two-slot layout of the paper's testbed; a DAG folds each
	// pool's replica-mean counters into its slot (front pools naturally
	// map to TierApp, cache and store pools to TierDB).
	Slot TierID
	// Replicas is the pool's initial replica count.
	Replicas int
	// MinReplicas/MaxReplicas bound autoscaling. Zero values pin the
	// pool at Replicas (no scaling).
	MinReplicas int
	MaxReplicas int
	// Tier is the per-replica machine and software configuration.
	Tier TierConfig
	// DemandFrac scales the profile demand executed here: front pools
	// execute DemandFrac of the interaction's app demand, cache and
	// store pools DemandFrac of its DB demand. 1 reproduces the legacy
	// tiers.
	DemandFrac float64
	// WorkFrac scales the profile working set the pool's workers touch.
	WorkFrac float64
	// HitRatio is the cache hit probability (cache pools only).
	HitRatio float64
	// Downstream names the pools this pool calls, in order, one network
	// hop away. A cache pool's downstream is consulted only on a miss.
	Downstream []string
}

// Capacity returns the pool's execution capacity in normalized demand
// seconds per second: replicas times machine speed.
func (p PoolConfig) Capacity() float64 {
	return float64(p.Replicas) * p.Tier.Machine.Speed
}

// TopologyConfig defines an arbitrary tier DAG: named replica pools wired
// by Downstream edges, with requests entering at Entry (the implicit load
// balancer, which round-robins across the entry pool's replicas).
type TopologyConfig struct {
	Pools []PoolConfig
	// Entry names the pool requests enter at; it must be a front pool.
	Entry string
	// NetworkHop is the mean one-way latency between pools in seconds.
	NetworkHop float64
	// Seed drives all randomness in the DAG testbed.
	Seed int64
}

// TwoTierTopology expresses a legacy two-tier Config as the degenerate
// DAG — one front pool and one store pool of one replica each, no cache.
// NewDAGTestbed over this topology replays NewTestbed over cfg event for
// event: the equivalence test pins byte-identical transcripts.
func TwoTierTopology(cfg Config) TopologyConfig {
	return TopologyConfig{
		Pools: []PoolConfig{
			{
				Name: "app", Kind: PoolFront, Slot: TierApp,
				Replicas: 1, Tier: cfg.App,
				DemandFrac: 1, WorkFrac: 1,
				Downstream: []string{"db"},
			},
			{
				Name: "db", Kind: PoolStore, Slot: TierDB,
				Replicas: 1, Tier: cfg.DB,
				DemandFrac: 1, WorkFrac: 1,
			},
		},
		Entry:      "app",
		NetworkHop: cfg.NetworkHop,
		Seed:       cfg.Seed,
	}
}

// DefaultTopologyConfig returns the calibrated four-pool reference DAG:
// load balancer → replicated app pool → look-aside cache → sharded store,
// built from the legacy machine calibrations. The app pool starts at two
// replicas and may scale between one and six; the cache absorbs seven of
// ten store visits.
func DefaultTopologyConfig() TopologyConfig {
	base := DefaultConfig()
	cacheTier := base.DB
	// A cache replica is a memory server: fast, shallow queries, a far
	// bigger working-set budget before thrash, and no lock convoys.
	cacheTier.MaxWorkers = 64
	cacheTier.ThrashMB = 900
	cacheTier.MissPenalty = 2.0
	cacheTier.LockBlockFrac = 0
	cacheTier.BackgroundRate = 0.1
	cacheTier.BackgroundBankSec = 5
	return TopologyConfig{
		Pools: []PoolConfig{
			{
				Name: "app", Kind: PoolFront, Slot: TierApp,
				Replicas: 2, MinReplicas: 1, MaxReplicas: 6,
				Tier: base.App, DemandFrac: 1, WorkFrac: 1,
				Downstream: []string{"cache"},
			},
			{
				Name: "cache", Kind: PoolCache, Slot: TierDB,
				Replicas: 1, MinReplicas: 1, MaxReplicas: 2,
				Tier: cacheTier, DemandFrac: 0.15, WorkFrac: 0.3,
				HitRatio:   0.7,
				Downstream: []string{"db"},
			},
			{
				Name: "db", Kind: PoolStore, Slot: TierDB,
				Replicas: 2, MinReplicas: 1, MaxReplicas: 4,
				Tier: base.DB, DemandFrac: 1, WorkFrac: 1,
			},
		},
		Entry:      "app",
		NetworkHop: base.NetworkHop,
		Seed:       base.Seed,
	}
}

// Validate returns one error per violated constraint; it never panics,
// whatever the configuration holds (the topology fuzz test pins this).
// Like Config.Validate, the errors carry no shared sentinel: the server
// package sits below core in the import graph.
func (tc TopologyConfig) Validate() []error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("server: topology: "+format, args...))
	}
	if len(tc.Pools) == 0 {
		bad("no pools")
		return errs
	}
	index := make(map[string]int, len(tc.Pools))
	for i, p := range tc.Pools {
		if p.Name == "" {
			bad("pool %d has no name", i)
			continue
		}
		if _, dup := index[p.Name]; dup {
			bad("duplicate pool name %q", p.Name)
			continue
		}
		index[p.Name] = i
	}
	for _, p := range tc.Pools {
		name := p.Name
		if name == "" {
			continue
		}
		if p.Kind < PoolFront || p.Kind > PoolStore {
			bad("pool %q has unknown kind %d", name, int(p.Kind))
		}
		if p.Slot < 0 || p.Slot >= NumTiers {
			bad("pool %q slot %d out of range [0,%d)", name, int(p.Slot), NumTiers)
		}
		if p.Replicas <= 0 {
			bad("pool %q has %d replicas, need >= 1", name, p.Replicas)
		}
		if p.MinReplicas < 0 || p.MaxReplicas < 0 {
			bad("pool %q has negative replica bounds [%d,%d]", name, p.MinReplicas, p.MaxReplicas)
		} else if p.MaxReplicas > 0 {
			if p.MinReplicas > p.MaxReplicas {
				bad("pool %q replica bounds inverted [%d,%d]", name, p.MinReplicas, p.MaxReplicas)
			} else if p.Replicas < p.MinReplicas || p.Replicas > p.MaxReplicas {
				bad("pool %q starts at %d replicas outside bounds [%d,%d]",
					name, p.Replicas, p.MinReplicas, p.MaxReplicas)
			}
		}
		if math.IsNaN(p.DemandFrac) || math.IsInf(p.DemandFrac, 0) || p.DemandFrac < 0 {
			bad("pool %q has bad demand fraction %v", name, p.DemandFrac)
		}
		if math.IsNaN(p.WorkFrac) || math.IsInf(p.WorkFrac, 0) || p.WorkFrac < 0 {
			bad("pool %q has bad work fraction %v", name, p.WorkFrac)
		}
		if math.IsNaN(p.HitRatio) || p.HitRatio < 0 || p.HitRatio > 1 {
			bad("pool %q hit ratio %v outside [0,1]", name, p.HitRatio)
		} else if p.HitRatio > 0 && p.Kind != PoolCache {
			bad("pool %q has a hit ratio but is not a cache", name)
		}
		errs = append(errs, tierErrs(name+" pool", p.Tier)...)
		seen := make(map[string]bool, len(p.Downstream))
		for _, d := range p.Downstream {
			if _, ok := index[d]; !ok {
				bad("pool %q downstream %q does not exist", name, d)
				continue
			}
			if seen[d] {
				bad("pool %q lists downstream %q twice", name, d)
			}
			seen[d] = true
		}
	}
	if tc.Entry == "" {
		bad("no entry pool")
	} else if i, ok := index[tc.Entry]; !ok {
		bad("entry pool %q does not exist", tc.Entry)
	} else if k := tc.Pools[i].Kind; k == PoolCache || k == PoolStore {
		// An unknown kind is already reported above; only a valid
		// non-front kind earns the entry-specific error.
		bad("entry pool %q must be a front pool, is %s", tc.Entry, k)
	}
	if math.IsNaN(tc.NetworkHop) || math.IsInf(tc.NetworkHop, 0) || tc.NetworkHop < 0 {
		bad("NetworkHop %v must be non-negative", tc.NetworkHop)
	}
	errs = append(errs, tc.graphErrs(index)...)
	return errs
}

// graphErrs reports cycles and orphan pools: one error per back edge and
// one per pool unreachable from the entry. Edges to unknown names are
// skipped — they are reported separately.
func (tc TopologyConfig) graphErrs(index map[string]int) []error {
	var errs []error
	// Cycle detection: iterative DFS with colors, visiting pools in
	// declaration order so the report is deterministic.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(tc.Pools))
	var visit func(i int)
	visit = func(i int) {
		color[i] = gray
		for _, d := range tc.Pools[i].Downstream {
			j, ok := index[d]
			if !ok {
				continue
			}
			switch color[j] {
			case gray:
				errs = append(errs, fmt.Errorf("server: topology: cycle through edge %q -> %q",
					tc.Pools[i].Name, d))
			case white:
				visit(j)
			}
		}
		color[i] = black
	}
	for i := range tc.Pools {
		if color[i] == white {
			visit(i)
		}
	}
	// Orphans: pools the entry can never route a request to.
	entry, ok := index[tc.Entry]
	if !ok {
		return errs
	}
	reach := make([]bool, len(tc.Pools))
	queue := []int{entry}
	reach[entry] = true
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, d := range tc.Pools[i].Downstream {
			if j, ok := index[d]; ok && !reach[j] {
				reach[j] = true
				queue = append(queue, j)
			}
		}
	}
	for i, p := range tc.Pools {
		if !reach[i] && p.Name != "" {
			errs = append(errs, fmt.Errorf("server: topology: pool %q is orphaned (unreachable from entry %q)",
				p.Name, tc.Entry))
		}
	}
	return errs
}

// VisitFractions returns each pool's expected visits per request: the
// entry sees every request once; a cache's downstream sees only its miss
// fraction. Pools reached along several paths accumulate. The topology
// must validate first (cycles would not terminate deterministically);
// unknown downstream names are skipped.
func (tc TopologyConfig) VisitFractions() map[string]float64 {
	index := make(map[string]int, len(tc.Pools))
	for i, p := range tc.Pools {
		index[p.Name] = i
	}
	out := make(map[string]float64, len(tc.Pools))
	var walk func(i int, visits float64)
	walk = func(i int, visits float64) {
		p := tc.Pools[i]
		out[p.Name] += visits
		down := visits
		if p.Kind == PoolCache {
			down = visits * (1 - p.HitRatio)
		}
		for _, d := range p.Downstream {
			if j, ok := index[d]; ok {
				walk(j, down)
			}
		}
	}
	if i, ok := index[tc.Entry]; ok {
		walk(i, 1)
	}
	return out
}

// PoolLoad pairs one pool's offered load against its capacity over an
// interval: Offered in normalized demand seconds per second, Capacity in
// demand seconds per second executable across the pool's active replicas.
type PoolLoad struct {
	Pool     string
	Slot     TierID
	Kind     PoolKind
	Replicas int // active (routable) replicas
	Offered  float64
	Capacity float64
}

// Ratio returns offered load over capacity — the utilization demand the
// pool would need to keep up. Zero capacity (a fully drained pool) maps
// to +Inf under load and 0 when idle.
func (l PoolLoad) Ratio() float64 {
	if l.Capacity <= 0 {
		if l.Offered > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return l.Offered / l.Capacity
}

// BottleneckPool returns the index of the pool with the maximal
// offered-load/capacity ratio (ties break to the earliest pool), or -1
// for an empty slice. This is the pool-level generalization of the
// paper's which-tier bottleneck attribution: the pool that saturates
// first as load grows is the one already running closest to (or past)
// its capacity.
func BottleneckPool(loads []PoolLoad) int {
	best := -1
	var bestRatio float64
	for i, l := range loads {
		r := l.Ratio()
		if best < 0 || r > bestRatio {
			best, bestRatio = i, r
		}
	}
	return best
}
