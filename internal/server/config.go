// Package server simulates the paper's two-tier e-commerce testbed: a
// Tomcat-like application tier in front of a MySQL-like database tier,
// driven by TPC-W emulated browsers. The simulation is discrete-event and
// deterministic.
//
// Overload is produced mechanistically rather than by labeling:
//
//   - The application tier dilates CPU bursts as the number of runnable
//     threads grows (scheduler and context-switch overhead plus i-cache/ITLB
//     pollution) — the failure mode of the ordering mix, where "there were
//     too many threads in concurrent execution" (paper §V.B).
//   - The database tier dilates CPU bursts as the combined working set of
//     concurrently active queries overwhelms the effective cache — the
//     failure mode of the browsing mix, where "system overload was due to a
//     small percentage of heavy requests in the database server".
//
// Because dilation both consumes extra cycles (stalls, cache misses,
// context switches — visible in hardware counters) and reduces effective
// capacity (visible as application-level throughput stagnation), hardware
// metrics correlate with high-level healthiness by construction, which is
// the physical premise of the paper.
package server

import (
	"errors"
	"fmt"
)

// MachineConfig describes one physical server's processor, loosely modeled
// on the paper's testbed (app: Pentium 4 2.0 GHz; DB: Pentium D 2.8 GHz,
// both Intel NetBurst without hyperthreading).
type MachineConfig struct {
	Name    string
	Speed   float64 // CPU speed relative to the app machine (app 1.0)
	ClockHz float64 // clock rate for cycle accounting
	BaseIPC float64 // ideal retired instructions per cycle when cache-resident
	// InstrPerDemandSec converts normalized CPU demand (seconds at speed
	// 1.0) to retired instructions; machine independent so the same
	// request retires the same instruction count everywhere.
	InstrPerDemandSec float64
	// L2RefPerInstr is the fraction of instructions referencing L2.
	L2RefPerInstr float64
	// BranchPerInstr is the fraction of branch instructions.
	BranchPerInstr float64
}

// TierConfig describes one tier's software server.
type TierConfig struct {
	Machine MachineConfig
	// MaxWorkers bounds concurrently bound workers: servlet threads on
	// the app tier, connections on the DB tier.
	MaxWorkers int

	// Contention model. BaseMissRatio is the L2 miss ratio of an
	// unloaded server. MaxMissRatio is approached under full thrash.
	BaseMissRatio float64
	MaxMissRatio  float64
	// ThrashMB scales cache contention: when the combined working set of
	// active workers reaches ThrashMB the miss ratio is halfway between
	// base and max (working-set saturation term x²/(1+x²)).
	ThrashMB float64
	// MissPenalty is the service-time dilation per unit miss ratio.
	MissPenalty float64
	// CtxSwitchK is the service-time dilation at a full runnable queue
	// (scheduler + context-switch overhead); dilation grows as
	// (runnable/MaxWorkers)^1.5.
	CtxSwitchK float64
	// CtxSwitchRate is context switches per busy second per runnable
	// worker.
	CtxSwitchRate float64
	// QuantumSec is the round-robin scheduling quantum of the tier's
	// CPU; zero selects the default.
	QuantumSec float64

	// Background models the server's housekeeping load (InnoDB purge and
	// statistics refresh, log archiving, scheduled jobs): up to
	// BackgroundRate CPU-seconds of work per second executed at idle
	// priority, never delaying request processing. Background work keeps
	// CPU utilization and the run queue high even when the site is
	// healthy — the reason OS-level utilization is a poor capacity
	// signal (§II.A) — while its cache behaviour (BackgroundMiss) stays
	// benign, so hardware counters still expose foreground thrashing.
	BackgroundRate    float64
	BackgroundThreads int
	BackgroundMiss    float64

	// BackgroundBankSec caps how much deferred housekeeping can bank up
	// while the foreground is busy (nightly reports, purge backlogs). A
	// deep bank means the machine runs flat out catching up long after a
	// busy period ends — healthy windows with pegged CPU that OS metrics
	// cannot tell from overload.
	BackgroundBankSec float64

	// LockBlockFrac is the fraction of queued workers that are blocked on
	// locks rather than runnable when the tier is fully thrashed (buffer
	// pool mutexes and row locks convoy behind cache-miss-stretched
	// critical sections). Blocked workers sleep in S state — invisible to
	// the OS run queue and load average, which is why "excessive work"
	// overload hides from OS metrics while the hardware miss ratio sees
	// it directly. The blocking fraction scales with the instantaneous
	// cache contention.
	LockBlockFrac float64
}

// defaultQuantumSec approximates a Linux 2.6 timeslice.
const defaultQuantumSec = 0.006

// Config assembles the whole testbed.
type Config struct {
	App TierConfig
	DB  TierConfig
	// NetworkHop is the mean one-way network latency between machines in
	// seconds (fast Ethernet on the paper's testbed).
	NetworkHop float64
	// Seed drives all randomness in the testbed.
	Seed int64
}

// DefaultConfig returns the calibrated two-tier testbed. The app machine is
// the slower of the two, as on the paper's testbed, which pushes the
// ordering-mix bottleneck onto the app tier and the browsing-mix bottleneck
// onto the DB tier.
func DefaultConfig() Config {
	return Config{
		App: TierConfig{
			Machine: MachineConfig{
				Name:              "app",
				Speed:             1.0,
				ClockHz:           2.0e9,
				BaseIPC:           0.9,
				InstrPerDemandSec: 1.8e9,
				L2RefPerInstr:     0.055,
				BranchPerInstr:    0.17,
			},
			MaxWorkers:    150,
			BaseMissRatio: 0.020,
			MaxMissRatio:  0.24,
			// The app tier's cache pressure comes mostly from context
			// switching, so the working-set term is mild.
			ThrashMB:      2000,
			MissPenalty:   3.0,
			CtxSwitchK:    1.1,
			CtxSwitchRate: 55,
			// Log rotation and JMX polling: a sliver of idle-priority work.
			BackgroundRate:    0.05,
			BackgroundThreads: 1,
			BackgroundMiss:    0.02,
			BackgroundBankSec: 2,
		},
		DB: TierConfig{
			Machine: MachineConfig{
				Name:              "db",
				Speed:             1.4,
				ClockHz:           2.8e9,
				BaseIPC:           0.9,
				InstrPerDemandSec: 1.8e9,
				L2RefPerInstr:     0.075,
				BranchPerInstr:    0.14,
			},
			// Effective concurrency is capped by the app tier's JDBC
			// connection pool (the classic DBCP default of 8), not
			// MySQL's max_connections: a handful of heavy queries can
			// monopolize the database while its own run queue stays
			// short — the "excessive work" overload OS metrics miss.
			MaxWorkers:    8,
			BaseMissRatio: 0.025,
			MaxMissRatio:  0.38,
			ThrashMB:      120,
			MissPenalty:   6.0,
			// The DB runs few processes and its waiters sleep on locks,
			// so switching stays near one per quantum regardless of load.
			CtxSwitchK:    0.15,
			CtxSwitchRate: 4,
			// InnoDB purge/stats threads and nightly report queries soak
			// well over half of whatever CPU the foreground leaves idle.
			BackgroundRate:    0.62,
			BackgroundThreads: 2,
			BackgroundMiss:    0.035,
			BackgroundBankSec: 90,
			// Thrashed queries convoy on buffer-pool and row locks: at
			// full thrash nearly every waiting connection sleeps behind
			// the mutex held by the miss-stalled query at the head.
			LockBlockFrac: 0.92,
		},
		NetworkHop: 0.0004,
		Seed:       1,
	}
}

// Validate returns one error per violated constraint. The simulator
// sits at the bottom of the import graph, below the core package, so
// unlike the higher-layer configs these errors carry no shared
// sentinel — join them with errors.Join and match on the message.
func (c Config) Validate() []error {
	var errs []error
	errs = append(errs, tierErrs("app tier", c.App)...)
	errs = append(errs, tierErrs("db tier", c.DB)...)
	if c.NetworkHop < 0 {
		errs = append(errs, errors.New("server: NetworkHop must be non-negative"))
	}
	return errs
}

// tierErrs checks one tier's machine and software constraints, returning
// one error per violation — shared between the legacy two-tier Config and
// the per-pool checks of TopologyConfig.
func tierErrs(name string, t TierConfig) []error {
	var errs []error
	if t.MaxWorkers <= 0 {
		errs = append(errs, fmt.Errorf("server: %s MaxWorkers must be positive", name))
	}
	if t.Machine.Speed <= 0 || t.Machine.ClockHz <= 0 {
		errs = append(errs, fmt.Errorf("server: %s machine speed/clock must be positive", name))
	}
	if t.Machine.BaseIPC <= 0 || t.Machine.InstrPerDemandSec <= 0 {
		errs = append(errs, fmt.Errorf("server: %s machine IPC/instruction rate must be positive", name))
	}
	if t.BaseMissRatio < 0 || t.MaxMissRatio < t.BaseMissRatio || t.MaxMissRatio >= 1 {
		errs = append(errs, fmt.Errorf("server: %s miss ratios invalid (base %v, max %v)",
			name, t.BaseMissRatio, t.MaxMissRatio))
	}
	if t.ThrashMB <= 0 {
		errs = append(errs, fmt.Errorf("server: %s ThrashMB must be positive", name))
	}
	return errs
}
