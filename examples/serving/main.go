// Serving: the online path from live per-second counter samples to
// overload decisions. A ServingPipeline monitors two simulated sites at
// once — each under its own burst schedule — windows their 1-second
// samples, predicts through independent per-site sessions, and drives an
// admission valve on one of them. The stream to the second site is
// deliberately damaged (lost and corrupted samples) to show the pipeline
// degrading gracefully instead of stalling.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"hpcap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// site is one simulated monitored website with its per-tier collectors.
type site struct {
	name string
	tb   *hpcap.Testbed
	coll [hpcap.NumTiers]*hpcap.HPCCollector
}

func run() error {
	lab := hpcap.NewLab(hpcap.QuickScale())
	fmt.Println("training the capacity monitor...")
	monitor, err := lab.TrainMonitor(hpcap.LevelHPC, hpcap.CoordinatorConfig{})
	if err != nil {
		return err
	}
	w, err := lab.Workload(hpcap.Browsing())
	if err != nil {
		return err
	}

	// The pipeline: one shared trained monitor, one session per site,
	// decisions printed as they are made.
	pipe, err := hpcap.NewServingPipeline(monitor, hpcap.ServingConfig{
		OnDecision: func(d hpcap.Decision) {
			verdict := "healthy"
			if d.Prediction.Overload {
				verdict = fmt.Sprintf("OVERLOADED — bottleneck at the %s tier", d.Prediction.Bottleneck)
			}
			flag := ""
			if d.Degraded {
				flag = fmt.Sprintf("  [degraded: %d samples missing]", d.Missing)
			}
			fmt.Printf("t=%5.0f  %-6s %s%s\n", d.Time, d.Site, verdict, flag)
		},
	})
	if err != nil {
		return err
	}

	// Two sites under staggered bursts past the browsing knee.
	cfg := hpcap.DefaultServerConfig()
	burst := func(lead float64) hpcap.Schedule {
		return hpcap.Concat(
			hpcap.Steady(hpcap.Browsing(), w.Knee/2, 120+lead),
			hpcap.Steady(hpcap.Browsing(), w.Knee*2, 240),
			hpcap.Steady(hpcap.Browsing(), w.Knee/2, 240-lead),
		)
	}
	sites := make([]*site, 2)
	for i := range sites {
		c := cfg
		c.Seed = int64(100 * (i + 1))
		tb, err := hpcap.NewTestbed(c, burst(float64(60*i)))
		if err != nil {
			return err
		}
		s := &site{name: fmt.Sprintf("shop-%d", i+1), tb: tb}
		machines := [hpcap.NumTiers]hpcap.TierConfig{c.App, c.DB}
		for tier := hpcap.TierID(0); tier < hpcap.NumTiers; tier++ {
			s.coll[tier] = hpcap.NewHPCCollector(tier, machines[tier].Machine, 0.02, c.Seed+int64(tier))
		}
		sites[i] = s
	}
	// Close the control loop on the first site only: under predicted
	// overload its front end keeps just a short admitted pipeline.
	sites[0].tb.SetAdmission(pipe.AdmissionValve(sites[0].name, 30))
	for _, s := range sites {
		if err := s.tb.Start(); err != nil {
			return err
		}
	}

	fmt.Printf("\nstreaming two sites (knee = %d EBs, bursts = %d EBs);\n", w.Knee, 2*w.Knee)
	fmt.Printf("%s is admission-controlled, %s has a damaged metric stream\n\n", sites[0].name, sites[1].name)
	seconds := int(burst(0).Duration())
	for i := 0; i < seconds; i++ {
		for si, s := range sites {
			snap := s.tb.RunInterval(1)
			for tier := hpcap.TierID(0); tier < hpcap.NumTiers; tier++ {
				v := s.coll[tier].Collect(snap, 1)
				// Damage the second site's stream: drop a sample every 17
				// seconds and corrupt one every 41 (counter wrap → NaN).
				if si == 1 && i%17 == 0 {
					continue
				}
				vals := append([]float64(nil), v...)
				if si == 1 && i%41 == 0 {
					vals[0] = math.NaN()
				}
				pipe.Ingest(hpcap.StreamSample{Site: s.name, Tier: tier, Time: snap.Time, Values: vals})
			}
		}
	}
	pipe.Flush()

	fmt.Println("\nper-site serving counters:")
	for _, st := range pipe.Stats() {
		fmt.Printf("  %-6s windows=%d degraded=%d dropped=%d bad=%d overloads=%d mean-predict=%s\n",
			st.Site, st.WindowsDecided, st.WindowsDegraded, st.WindowsDropped,
			st.SamplesBadValue, st.Overloads, st.MeanPredictLatency())
	}
	arrivals, _, rejections, _ := sites[0].tb.Conservation()
	fmt.Printf("\n%s admission valve rejected %d of %d arrivals during the burst\n",
		sites[0].name, rejections, arrivals)

	fmt.Println("\nPrometheus exposition (excerpt):")
	var buf strings.Builder
	if err := pipe.WriteMetrics(&buf); err != nil {
		return err
	}
	for _, line := range strings.SplitAfter(buf.String(), "\n")[:12] {
		fmt.Print(line)
	}
	return nil
}
