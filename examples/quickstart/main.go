// Quickstart: train a hardware-counter capacity monitor on the two
// representative TPC-W mixes and watch it classify a bottleneck-shifting
// workload online.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hpcap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A Lab owns the simulated testbed, measures each mix's saturation
	// knee by offline stress testing, and caches the training traces.
	lab := hpcap.NewLab(hpcap.QuickScale())

	fmt.Println("training the HPC-level capacity monitor (TAN synopses +")
	fmt.Println("two-level coordinated predictor) on browsing and ordering mixes...")
	monitor, err := lab.TrainMonitor(hpcap.LevelHPC, hpcap.CoordinatorConfig{})
	if err != nil {
		return err
	}
	for _, syn := range monitor.Synopses {
		fmt.Printf("  synopsis %-24s 10-fold CV %.3f  attrs %v\n",
			syn.Key(), syn.CV, syn.AttrNames)
	}

	// Drive a workload whose bottleneck shifts between the tiers and let
	// the monitor classify each 30-second window.
	fmt.Println("\nreplaying an interleaved browsing/ordering workload:")
	test, err := lab.TestTrace(hpcap.TestInterleaved)
	if err != nil {
		return err
	}
	// Each prediction stream takes its own session over the shared
	// monitor; the session owns the temporal history.
	sess := monitor.NewSession()
	correct := 0
	for _, w := range test.Windows {
		p, err := sess.Predict(hpcap.Observation{Time: w.Time, Vectors: w.HPC})
		if err != nil {
			return err
		}
		state := "underload"
		if p.Overload {
			state = fmt.Sprintf("OVERLOAD (bottleneck: %s tier)", p.Bottleneck)
		}
		truth := "underload"
		if w.Overload == 1 {
			truth = "OVERLOAD (bottleneck: " + w.Bottleneck.String() + " tier)"
		}
		mark := "  "
		if (w.Overload == 1) == p.Overload {
			correct++
		} else {
			mark = "✗ "
		}
		fmt.Printf("%st=%5.0fs  %-9s ebs=%-4d predicted %-34s truth %s\n",
			mark, w.Time, w.Mix, w.EBs, state, truth)
	}
	fmt.Printf("\noverload prediction: %d/%d windows correct\n", correct, len(test.Windows))
	return nil
}
