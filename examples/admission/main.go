// Admission control: the QoS use case from the paper's introduction. A
// front-end admission controller driven by the capacity monitor's online
// overload predictions sheds excess traffic during a flash burst,
// protecting the response time of the requests it admits. The same burst is
// replayed with no controller for comparison.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"hpcap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab := hpcap.NewLab(hpcap.QuickScale())
	fmt.Println("training the capacity monitor...")
	monitor, err := lab.TrainMonitor(hpcap.LevelHPC, hpcap.CoordinatorConfig{
		// The pessimistic tie-break suits admission control: when unsure,
		// protect the site.
		Scheme: hpcap.Pessimistic,
	})
	if err != nil {
		return err
	}

	// A heavy browsing burst: healthy base load, then a long surge to
	// roughly twice the knee, then recovery.
	w, err := lab.Workload(hpcap.Browsing())
	if err != nil {
		return err
	}
	burst := hpcap.Concat(
		hpcap.Steady(hpcap.Browsing(), w.Knee/2, 300),
		hpcap.Steady(hpcap.Browsing(), w.Knee*2, 600),
		hpcap.Steady(hpcap.Browsing(), w.Knee/2, 300),
	)

	const slaRT = 1.0 // seconds
	fmt.Printf("replaying a browsing burst (knee = %d EBs, burst = %d EBs)\n\n", w.Knee, 2*w.Knee)

	unThr, unGood, unRT, err := replay(monitor, burst, false)
	if err != nil {
		return err
	}
	ctlThr, ctlGood, ctlRT, err := replay(monitor, burst, true)
	if err != nil {
		return err
	}

	fmt.Printf("%-22s %12s %14s %10s\n", "", "completed/s", "goodput/s", "mean RT")
	fmt.Printf("%-22s %12.1f %14.1f %9.2fs\n", "no admission control", unThr, unGood, unRT)
	fmt.Printf("%-22s %12.1f %14.1f %9.2fs\n", "predictor-driven", ctlThr, ctlGood, ctlRT)
	fmt.Printf("\ngoodput = requests answered within the %.0f s SLA.\n", slaRT)
	if ctlGood <= unGood {
		fmt.Println("note: control did not improve goodput on this run")
	}
	return nil
}

// replay runs the burst schedule, optionally letting the monitor drive an
// admission valve, and returns completed throughput, SLA goodput and mean
// response time measured over the run.
func replay(monitor *hpcap.Monitor, sched hpcap.Schedule, controlled bool) (thr, goodput, meanRT float64, err error) {
	cfg := hpcap.DefaultServerConfig()
	cfg.Seed = 42
	tb, err := hpcap.NewTestbed(cfg, sched)
	if err != nil {
		return 0, 0, 0, err
	}

	// The admission valve: wide open while the monitor predicts
	// underload; under predicted overload only a bounded backlog is
	// admitted, so admitted requests keep flowing through quickly.
	overloaded := false
	if controlled {
		tb.SetAdmission(func(s hpcap.AdmissionState) bool {
			if !overloaded {
				return true
			}
			// Keep the pipeline short: beyond ≈30 in-service requests the
			// database is already saturated and extra admissions only
			// queue.
			return s.WaitQueue == 0 && s.BoundWorkers < 30
		})
	}
	if err := tb.Start(); err != nil {
		return 0, 0, 0, err
	}

	// Online collection: per-second counter samples aggregated into
	// 30-second windows per tier.
	aggApp, err := hpcap.NewAggregator(
		hpcap.NewHPCCollector(hpcap.TierApp, cfg.App.Machine, 0.02, 1), hpcap.DefaultWindow)
	if err != nil {
		return 0, 0, 0, err
	}
	aggDB, err := hpcap.NewAggregator(
		hpcap.NewHPCCollector(hpcap.TierDB, cfg.DB.Machine, 0.02, 2), hpcap.DefaultWindow)
	if err != nil {
		return 0, 0, 0, err
	}

	// A fresh session per replay keeps the two runs' temporal histories
	// independent while sharing the trained monitor.
	sess := monitor.NewSession()
	const slaRT = 1.0
	var completed, good int
	var rtWeighted float64
	seconds := int(sched.Duration())
	for i := 0; i < seconds; i++ {
		snap := tb.RunInterval(1)
		completed += snap.Completions
		rtWeighted += snap.MeanRT * float64(snap.Completions)
		// Goodput approximation: windows whose mean RT meets the SLA
		// contribute their completions.
		if snap.MeanRT <= slaRT {
			good += snap.Completions
		}

		appSample, appDone := aggApp.Push(snap, 1)
		dbSample, _ := aggDB.Push(snap, 1)
		if !appDone {
			continue
		}
		obs := hpcap.Observation{Time: appSample.Time}
		obs.Vectors[hpcap.TierApp] = appSample.Values
		obs.Vectors[hpcap.TierDB] = dbSample.Values
		p, err := sess.Predict(obs)
		if err != nil {
			return 0, 0, 0, err
		}
		overloaded = p.Overload
	}
	thr = float64(completed) / float64(seconds)
	goodput = float64(good) / float64(seconds)
	if completed > 0 {
		meanRT = rtWeighted / float64(completed)
	}
	return thr, goodput, meanRT, nil
}
