// Capacity planning: offline stress testing of the site, as the paper's
// calibration phase performs it. For each TPC-W mix the example bisects for
// the saturation knee (the smallest browser population whose steady state
// is overloaded), measures peak healthy throughput just below the knee, and
// identifies the saturating tier.
//
//	go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"hpcap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := hpcap.DefaultServerConfig()
	labeler := hpcap.Labeler{}

	mixes := []hpcap.Mix{
		hpcap.Browsing(),
		hpcap.Shopping(),
		hpcap.Ordering(),
	}
	fmt.Println("offline capacity calibration of the two-tier site")
	fmt.Printf("%-10s %10s %14s %10s %10s %12s\n",
		"mix", "knee EBs", "peak thr/s", "app util", "db util", "bottleneck")
	for _, mix := range mixes {
		knee, err := hpcap.FindKnee(cfg, mix, labeler, 40, 1400)
		if err != nil {
			return err
		}
		thr, appU, dbU, err := measure(cfg, mix, knee*9/10)
		if err != nil {
			return err
		}
		bottleneck := hpcap.TierApp
		if dbU > appU {
			bottleneck = hpcap.TierDB
		}
		fmt.Printf("%-10s %10d %14.1f %9.0f%% %9.0f%% %12s\n",
			mix.Name, knee, thr, appU*100, dbU*100, bottleneck)
	}
	fmt.Println("\nutilizations include idle-priority housekeeping; the bottleneck")
	fmt.Println("column uses request-processing load only.")
	return nil
}

// measure runs a steady workload just below the knee and reports settled
// throughput and per-tier foreground utilization.
func measure(cfg hpcap.ServerConfig, mix hpcap.Mix, ebs int) (thr, appU, dbU float64, err error) {
	const warm, span = 240, 240
	tb, err := hpcap.NewTestbed(cfg, hpcap.Steady(mix, ebs, warm+span+10))
	if err != nil {
		return 0, 0, 0, err
	}
	if err := tb.Start(); err != nil {
		return 0, 0, 0, err
	}
	tb.RunInterval(warm)
	var completions int
	var appBusy, dbBusy float64
	for i := 0; i < span; i++ {
		s := tb.RunInterval(1)
		completions += s.Completions
		appBusy += s.Tiers[hpcap.TierApp].FgBusySeconds
		dbBusy += s.Tiers[hpcap.TierDB].FgBusySeconds
	}
	return float64(completions) / span, appBusy / span, dbBusy / span, nil
}
