// Fusion: de-noising a faulted counter stream with the Bayesian
// counter-fusion stage. One simulated site runs a burst past the
// browsing knee while its telemetry is deliberately damaged — a stretch
// of NaN components and a stretch of frozen (stuck) vectors. The same
// damaged stream is served twice, fusion off and fusion on, and both are
// scored against a clean reference run: fusion imputes the faulted
// readings from physically coupled counters instead of dropping samples,
// flags the mostly-imputed windows low-confidence, and recovers
// decisions the raw run gets wrong.
//
//	go run ./examples/fusion
package main

import (
	"fmt"
	"log"
	"math"

	"hpcap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// second is one recorded second of telemetry: every tier's vector under
// one timestamp.
type second struct {
	time float64
	vecs [hpcap.NumTiers][]float64
}

func run() error {
	lab := hpcap.NewLab(hpcap.QuickScale())
	fmt.Println("training the capacity monitor...")
	monitor, err := lab.TrainMonitor(hpcap.LevelHPC, hpcap.CoordinatorConfig{})
	if err != nil {
		return err
	}
	w, err := lab.Workload(hpcap.Browsing())
	if err != nil {
		return err
	}

	// Record one run of the site: steady below the knee, a burst past it,
	// recovery. The recording is replayed three times so every variant
	// sees the identical stream.
	cfg := hpcap.DefaultServerConfig()
	cfg.Seed = 42
	sched := hpcap.Concat(
		hpcap.Steady(hpcap.Browsing(), w.Knee/2, 120),
		hpcap.Steady(hpcap.Browsing(), w.Knee*2, 120),
		hpcap.Steady(hpcap.Browsing(), w.Knee/2, 120),
	)
	tb, err := hpcap.NewTestbed(cfg, sched)
	if err != nil {
		return err
	}
	var coll [hpcap.NumTiers]*hpcap.HPCCollector
	machines := [hpcap.NumTiers]hpcap.TierConfig{cfg.App, cfg.DB}
	for tier := hpcap.TierID(0); tier < hpcap.NumTiers; tier++ {
		coll[tier] = hpcap.NewHPCCollector(tier, machines[tier].Machine, 0.02, cfg.Seed+int64(tier))
	}
	if err := tb.Start(); err != nil {
		return err
	}
	var clean []second
	for i := 0.0; i < sched.Duration(); i++ {
		snap := tb.RunInterval(1)
		var s second
		s.time = snap.Time
		for tier := hpcap.TierID(0); tier < hpcap.NumTiers; tier++ {
			s.vecs[tier] = append([]float64(nil), coll[tier].Collect(snap, 1)...)
		}
		clean = append(clean, s)
	}

	// The storm: seconds 130-159 lose four app-tier components to NaN
	// (counter wrap), seconds 190-249 freeze the app tier entirely (a
	// wedged collector repeating its last reading).
	storm := make([]second, len(clean))
	for i, s := range clean {
		storm[i] = second{time: s.time, vecs: s.vecs}
	}
	for i := 130; i < 160; i++ {
		v := append([]float64(nil), storm[i].vecs[hpcap.TierApp]...)
		for _, c := range []int{0, 3, 7, 11} {
			v[c] = math.NaN()
		}
		storm[i].vecs[hpcap.TierApp] = v
	}
	for i := 190; i < 250; i++ {
		storm[i].vecs[hpcap.TierApp] = storm[189].vecs[hpcap.TierApp]
	}

	// Serve the same stream three ways: clean (reference), storm with
	// fusion off, storm with fusion on.
	serve := func(stream []second, fcfg *hpcap.FuseConfig) ([]bool, hpcap.SiteStats, error) {
		var verdicts []bool
		pipe, err := hpcap.NewServingPipeline(monitor, hpcap.ServingConfig{
			Fuse: fcfg,
			OnDecision: func(d hpcap.Decision) {
				verdicts = append(verdicts, d.Prediction.Overload)
			},
		})
		if err != nil {
			return nil, hpcap.SiteStats{}, err
		}
		for _, s := range stream {
			for tier := hpcap.TierID(0); tier < hpcap.NumTiers; tier++ {
				pipe.Ingest(hpcap.StreamSample{Site: "shop", Tier: tier, Time: s.time, Values: s.vecs[tier]})
			}
		}
		pipe.Flush()
		st, _ := pipe.SiteStats("shop")
		return verdicts, st, nil
	}

	ref, _, err := serve(clean, nil)
	if err != nil {
		return err
	}
	raw, rawStats, err := serve(storm, nil)
	if err != nil {
		return err
	}
	fc := hpcap.DefaultFuseConfig()
	fused, fusedStats, err := serve(storm, &fc)
	if err != nil {
		return err
	}

	agree := func(got []bool) (int, int) {
		n := len(ref)
		if len(got) < n {
			n = len(got)
		}
		match := 0
		for i := 0; i < n; i++ {
			if got[i] == ref[i] {
				match++
			}
		}
		// Windows the variant never decided count as misses.
		return match, len(ref)
	}

	fmt.Printf("\nclean reference: %d decided windows\n\n", len(ref))
	rm, rn := agree(raw)
	fm, fn := agree(fused)
	fmt.Printf("fusion off: %d/%d windows match the reference, %d decided, %d degraded, %d dropped, %d samples skipped as NaN\n",
		rm, rn, rawStats.WindowsDecided, rawStats.WindowsDegraded, rawStats.WindowsDropped, rawStats.SamplesBadValue)
	fmt.Printf("fusion on:  %d/%d windows match the reference, %d decided, %d low-confidence\n",
		fm, fn, fusedStats.WindowsDecided, fusedStats.WindowsLowConfidence)
	fmt.Printf("\nfusion stage: %d samples fused, %d readings imputed, %d gated, last-window confidence %.3f\n",
		fusedStats.SamplesFused, fusedStats.FuseImputed, fusedStats.FuseGated, fusedStats.FuseConfidence)
	if fm < rm {
		fmt.Println("\n(fusion matched fewer windows than raw — unexpected for this storm)")
	} else {
		fmt.Printf("\nfusion recovered %d windows the raw run lost or misjudged\n", fm-rm)
	}
	return nil
}
