// Adaptive: the model lifecycle closing the paper's train→serve loop. A
// monitor trained only on the browsing mix serves a trace whose traffic
// is scripted to shift to the ordering mix mid-run. The drift detectors
// notice the request population changing (mix-shift divergence) and the
// monitor's accuracy decaying against delayed ground truth; the registry
// snapshots the labeled history, retrains a candidate, shadow-evaluates
// it against the frozen incumbent, and hot-swaps it into the pipeline
// without dropping a single decision. The whole replay is deterministic —
// the same run is pinned byte-for-byte by the drift-replay golden test.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"strings"

	"hpcap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab := hpcap.NewLab(hpcap.QuickScale())
	fmt.Println("training a browsing-only monitor, then shifting the traffic to ordering mid-run...")

	rep, err := lab.RunDriftReplay(4)
	if err != nil {
		return err
	}

	// The transcript interleaves one line per decided window with the
	// lifecycle events fired while labeling it; print the events and the
	// summary, plus the decided windows just around the hot-swap.
	lines := strings.Split(strings.TrimRight(rep.Log, "\n"), "\n")
	fmt.Println("\nlifecycle events:")
	for _, line := range lines {
		if strings.HasPrefix(line, "  ") {
			fmt.Println(line)
		}
	}
	fmt.Println("\nwindows around the swap:")
	for _, line := range lines {
		if !strings.HasPrefix(line, "window seq=") {
			continue
		}
		var seq int64
		if _, err := fmt.Sscanf(line, "window seq=%d", &seq); err != nil {
			continue
		}
		if seq >= rep.SwapSeq-2 && seq <= rep.SwapSeq+2 {
			fmt.Println("  " + line)
		}
	}

	fmt.Printf("\ndrift detected, %d retrain(s), hot-swap at window %d\n", rep.Swaps, rep.SwapSeq)
	fmt.Printf("loss-free: the managed pipeline decided %d windows, the frozen replay %d\n",
		rep.Windows, rep.FrozenWindows)
	fmt.Printf("post-swap accuracy over the %d remaining windows: adaptive %d correct vs frozen %d\n",
		rep.PostSwapWindows, rep.AdaptiveHits, rep.FrozenHits)
	return nil
}
