// Bottleneck shifting: run a workload that alternates between DB-heavy
// browsing and app-heavy ordering traffic and watch the monitor identify
// the moving bottleneck online from hardware counters, alongside each
// tier's productivity index.
//
//	go run ./examples/bottleneckshift
package main

import (
	"fmt"
	"log"

	"hpcap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab := hpcap.NewLab(hpcap.QuickScale())
	fmt.Println("training the capacity monitor...")
	monitor, err := lab.TrainMonitor(hpcap.LevelHPC, hpcap.CoordinatorConfig{})
	if err != nil {
		return err
	}

	wb, err := lab.Workload(hpcap.Browsing())
	if err != nil {
		return err
	}
	wo, err := lab.Workload(hpcap.Ordering())
	if err != nil {
		return err
	}
	// Overload browsing, recover, overload ordering, recover — twice.
	sched := hpcap.Schedule{Phases: []hpcap.Phase{
		{Mix: hpcap.Browsing(), EBs: wb.Knee * 13 / 10, Duration: 300},
		{Mix: hpcap.Browsing(), EBs: wb.Knee / 2, Duration: 180},
		{Mix: hpcap.Ordering(), EBs: wo.Knee * 13 / 10, Duration: 300},
		{Mix: hpcap.Ordering(), EBs: wo.Knee / 2, Duration: 180},
		{Mix: hpcap.Browsing(), EBs: wb.Knee * 13 / 10, Duration: 300},
		{Mix: hpcap.Ordering(), EBs: wo.Knee * 13 / 10, Duration: 300},
	}}

	cfg := hpcap.DefaultServerConfig()
	cfg.Seed = 9
	tb, err := hpcap.NewTestbed(cfg, sched)
	if err != nil {
		return err
	}
	if err := tb.Start(); err != nil {
		return err
	}
	aggApp, err := hpcap.NewAggregator(
		hpcap.NewHPCCollector(hpcap.TierApp, cfg.App.Machine, 0.02, 1), hpcap.DefaultWindow)
	if err != nil {
		return err
	}
	aggDB, err := hpcap.NewAggregator(
		hpcap.NewHPCCollector(hpcap.TierDB, cfg.DB.Machine, 0.02, 2), hpcap.DefaultWindow)
	if err != nil {
		return err
	}

	ipcIdx := index(hpcap.HPCMetricNames, "hpc_ipc")
	missIdx := index(hpcap.HPCMetricNames, "hpc_l2_miss_ratio")

	sess := monitor.NewSession()
	fmt.Printf("%8s %-9s %5s | %9s %9s | %s\n",
		"time(s)", "mix", "EBs", "PI(app)", "PI(db)", "monitor verdict")
	seconds := int(sched.Duration())
	var lastApp, lastDB hpcap.MetricSample
	for i := 0; i < seconds; i++ {
		snap := tb.RunInterval(1)
		appSample, appDone := aggApp.Push(snap, 1)
		dbSample, _ := aggDB.Push(snap, 1)
		if !appDone {
			continue
		}
		lastApp, lastDB = appSample, dbSample

		obs := hpcap.Observation{Time: appSample.Time}
		obs.Vectors[hpcap.TierApp] = appSample.Values
		obs.Vectors[hpcap.TierDB] = dbSample.Values
		p, err := sess.Predict(obs)
		if err != nil {
			return err
		}
		verdict := "healthy"
		if p.Overload {
			verdict = fmt.Sprintf("OVERLOADED — bottleneck at the %s tier", p.Bottleneck)
		}
		phase := sched.At(appSample.Time - 1)
		fmt.Printf("%8.0f %-9s %5d | %9.1f %9.1f | %s\n",
			appSample.Time, phase.Mix.Name, phase.EBs,
			pi(lastApp, ipcIdx, missIdx), pi(lastDB, ipcIdx, missIdx), verdict)
	}
	return nil
}

// pi computes the productivity index IPC / L2-miss-ratio for one window.
func pi(s hpcap.MetricSample, ipcIdx, missIdx int) float64 {
	if len(s.Values) == 0 || s.Values[missIdx] <= 0 {
		return 0
	}
	return s.Values[ipcIdx] / s.Values[missIdx]
}

func index(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	return -1
}
