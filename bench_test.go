// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), one benchmark per artifact, plus microbenchmarks of the online hot
// paths. Macro benchmarks run the full experiment at QuickScale per
// iteration and report the headline numbers via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both regenerates the evaluation and profiles the implementation.
package hpcap_test

import (
	"sync"
	"testing"

	"hpcap"
)

// benchLab is shared across macro benchmarks: the experiments intentionally
// reuse one testbed's traces, exactly as the paper's do.
var (
	benchOnce sync.Once
	benchLab  *hpcap.Lab
)

func sharedLab(b *testing.B) *hpcap.Lab {
	b.Helper()
	benchOnce.Do(func() {
		benchLab = hpcap.NewLab(hpcap.QuickScale())
	})
	return benchLab
}

// BenchmarkTable1aBrowsingInput regenerates Table I(a): individual synopsis
// accuracy under the browsing-mix test input.
func BenchmarkTable1aBrowsingInput(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.RunTable1(hpcap.TestBrowsing)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Cell("browsing", hpcap.TierDB, hpcap.LevelHPC, "TAN"), "BA/browsing-db-hpc-tan")
	}
}

// BenchmarkTable1bOrderingInput regenerates Table I(b): individual synopsis
// accuracy under the ordering-mix test input.
func BenchmarkTable1bOrderingInput(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.RunTable1(hpcap.TestOrdering)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Cell("ordering", hpcap.TierApp, hpcap.LevelHPC, "TAN"), "BA/ordering-app-hpc-tan")
	}
}

// BenchmarkFig3PIVersusThroughput regenerates Figure 3: the productivity
// index tracking application throughput through an ordering-mix drive into
// overload.
func BenchmarkFig3PIVersusThroughput(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Agreement, "corr/pi-throughput")
		b.ReportMetric(float64(res.LeadWindows), "windows/pi-lead")
	}
}

// BenchmarkFig4aCoordinatedOverload regenerates Figure 4(a): coordinated
// overload prediction accuracy over the four test workloads.
func BenchmarkFig4aCoordinatedOverload(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, kind := range []hpcap.TestKind{hpcap.TestOrdering, hpcap.TestBrowsing, hpcap.TestInterleaved, hpcap.TestUnknown} {
			sum += res.Row(kind, hpcap.LevelHPC).Overload
		}
		b.ReportMetric(sum/4*100, "%BA/hpc-mean")
	}
}

// BenchmarkFig4bBottleneckID regenerates Figure 4(b): coordinated
// bottleneck identification accuracy.
func BenchmarkFig4bBottleneckID(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, kind := range []hpcap.TestKind{hpcap.TestOrdering, hpcap.TestBrowsing, hpcap.TestInterleaved, hpcap.TestUnknown} {
			sum += res.Row(kind, hpcap.LevelHPC).Bottleneck
		}
		b.ReportMetric(sum/4*100, "%acc/hpc-mean")
	}
}

// BenchmarkTimingLearnerCost regenerates the §V.B learner cost comparison
// (synopsis build and single-decision time per learner).
func BenchmarkTimingLearnerCost(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.RunTiming()
		if err != nil {
			b.Fatal(err)
		}
		svm, tan := res.Row("SVM"), res.Row("TAN")
		if svm == nil || tan == nil || tan.Build == 0 {
			b.Fatal("missing timing rows")
		}
		b.ReportMetric(float64(svm.Build)/float64(tan.Build), "x/svm-vs-tan-build")
	}
}

// BenchmarkOverheadCollection regenerates the §V.D metric-collection
// overhead experiment (throughput loss of HPC vs OS collection).
func BenchmarkOverheadCollection(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.RunOverhead()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((1-res.Row("hpc").RelThroughput)*100, "%loss/hpc")
		b.ReportMetric((1-res.Row("os").RelThroughput)*100, "%loss/os")
	}
}

// BenchmarkAblationHistory regenerates the §V.C sensitivity study over
// history lengths and tie-break schemes.
func BenchmarkAblationHistory(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.RunAblation()
		if err != nil {
			b.Fatal(err)
		}
		row := res.Row(3, hpcap.Optimistic, hpcap.TestInterleaved)
		if row == nil {
			b.Fatal("missing ablation row")
		}
		b.ReportMetric(row.Overload*100, "%BA/h3-optimistic")
	}
}

// BenchmarkBaselineComparison regenerates the baseline-detector comparison
// (single-PI / RT / utilization thresholds vs the coordinated monitor).
func BenchmarkBaselineComparison(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.RunBaselines()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanBA("coordinated-hpc")*100, "%BA/coordinated")
		b.ReportMetric(res.MeanBA("pi-threshold")*100, "%BA/single-pi")
		b.ReportMetric(res.MeanLag("rt-threshold"), "windows/rt-lag")
	}
}

// BenchmarkLevelComparison regenerates the OS vs HPC vs combined monitor
// comparison (the paper's future-work extension).
func BenchmarkLevelComparison(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.RunLevelComparison()
		if err != nil {
			b.Fatal(err)
		}
		row := res.Row(hpcap.LevelCombined, hpcap.TestInterleaved)
		if row == nil {
			b.Fatal("missing combined row")
		}
		b.ReportMetric(row.Overload*100, "%BA/combined-interleaved")
	}
}

// BenchmarkSimulatedSecond measures the discrete-event simulator's speed:
// one virtual second of a loaded two-tier site per iteration.
func BenchmarkSimulatedSecond(b *testing.B) {
	tb, err := hpcap.NewTestbed(hpcap.DefaultServerConfig(),
		hpcap.Steady(hpcap.Shopping(), 200, 1e9))
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		b.Fatal(err)
	}
	tb.RunInterval(60) // warm-up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.RunInterval(1)
	}
}

// BenchmarkHPCCollect measures one hardware-counter collection.
func BenchmarkHPCCollect(b *testing.B) {
	cfg := hpcap.DefaultServerConfig()
	tb, err := hpcap.NewTestbed(cfg, hpcap.Steady(hpcap.Shopping(), 100, 1e9))
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		b.Fatal(err)
	}
	snap := tb.RunInterval(30)
	c := hpcap.NewHPCCollector(hpcap.TierApp, cfg.App.Machine, 0.02, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Collect(snap, 1)
	}
}

// BenchmarkOSCollect measures one Sysstat-style collection (64 metrics).
func BenchmarkOSCollect(b *testing.B) {
	cfg := hpcap.DefaultServerConfig()
	tb, err := hpcap.NewTestbed(cfg, hpcap.Steady(hpcap.Shopping(), 100, 1e9))
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		b.Fatal(err)
	}
	snap := tb.RunInterval(30)
	c := hpcap.NewOSCollector(hpcap.TierApp, 512, 0.05, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Collect(snap, 1)
	}
}

// BenchmarkMonitorPredict measures one online coordinated prediction (the
// paper budgets 50 ms per decision; this path must be microseconds).
func BenchmarkMonitorPredict(b *testing.B) {
	lab := sharedLab(b)
	monitor, err := lab.TrainMonitor(hpcap.LevelHPC, hpcap.CoordinatorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	test, err := lab.TestTrace(hpcap.TestInterleaved)
	if err != nil {
		b.Fatal(err)
	}
	w := test.Windows[len(test.Windows)/2]
	obs := hpcap.Observation{Time: w.Time, Vectors: w.HPC}
	sess := monitor.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Predict(obs); err != nil {
			b.Fatal(err)
		}
	}
}
