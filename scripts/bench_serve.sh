#!/usr/bin/env sh
# bench_serve.sh — run the serving-path benchmarks and the capstress
# fleet-scale ingest legs, and emit a machine-readable BENCH_serve.json.
#
# Two kinds of rows land in the file:
#   - go-test microbenchmarks (BenchmarkPipelineIngest, BenchmarkFleetIngest
#     legs: unsharded / sharded / sharded-ref / sharded-site / sharded-batch
#     at 1k/10k/100k sites): ns/op, B/op, allocs/op of steady-state ingest.
#   - capstress -sites scale rows: end-to-end sites/sec, samples/sec,
#     sampled p50/p99 per-site scrape latency, allocs/op, decision counts.
#     The SECONDS pair stays inside one 30-second window (pure steady-state
#     ingest, zero decisions); the DECIDE_SECONDS pair crosses a window
#     boundary so the rows also amortize the per-window decision path,
#     which costs the same Predict call in both pipelines.
#
# Usage:
#   scripts/bench_serve.sh [out.json]       # default out: BENCH_serve.json
#   BENCHTIME=1x SITES=2000 SECONDS=12 DECIDE_SECONDS=0 scripts/bench_serve.sh /tmp/b.json   # quick CI run
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_serve.json}"
sites="${SITES:-100000}"
seconds="${SECONDS:-20}"
decide_seconds="${DECIDE_SECONDS:-40}"
tmp="$(mktemp)"
rows="$(mktemp)"
trap 'rm -f "$tmp" "$rows"' EXIT

go test -run '^$' \
    -bench '^(BenchmarkPipelineIngest|BenchmarkFleetIngest)$' \
    -benchmem -benchtime "${BENCHTIME:-2000000x}" -count 1 \
    ./internal/serve \
    | tee "$tmp"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bop = $(i - 1)
        if ($i == "allocs/op") aop = $(i - 1)
    }
    if (ns == "") next
    if (bop == "") bop = "null"
    if (aop == "") aop = "null"
    printf "{\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}\n", name, ns, bop, aop
}
' "$tmp" >> "$rows"

# Steady-state fleet ingest: the whole run fits inside one 30-second
# window, so the rows measure the per-sample path alone. The -fuse leg
# prices the counter-fusion stage on the same stream.
go run ./cmd/capstress -sites "$sites" -seconds "$seconds" >> "$rows"
go run ./cmd/capstress -sites "$sites" -seconds "$seconds" -shards 8 >> "$rows"
go run ./cmd/capstress -sites "$sites" -seconds "$seconds" -shards 8 -fuse >> "$rows"

# Decision-inclusive legs: long enough to close a window per site, so the
# shared per-window Predict cost is amortized into both rows.
if [ "$decide_seconds" -gt 0 ]; then
    go run ./cmd/capstress -sites "$sites" -seconds "$decide_seconds" -leg unsharded-decide >> "$rows"
    go run ./cmd/capstress -sites "$sites" -seconds "$decide_seconds" -shards 8 -leg sharded-decide >> "$rows"
fi

awk '
{ lines[n++] = "    " $0 }
END {
    print "{"
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}
' "$rows" > "$out"
echo "wrote $out"
