#!/usr/bin/env sh
# bench_train.sh — run the training-hot-path and decision-plane
# microbenchmarks and emit a machine-readable BENCH_train.json
# (ns/op, B/op, allocs/op per benchmark).
#
# Usage:
#   scripts/bench_train.sh [out.json]       # default out: BENCH_train.json
#   BENCHTIME=1x scripts/bench_train.sh     # quick CI run
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_train.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
    -bench '^(BenchmarkSVMFit|BenchmarkTANFit|BenchmarkNaiveFit|BenchmarkFeatselSelect|BenchmarkFeatselRank|BenchmarkPipelineIngest|BenchmarkDecide|BenchmarkDecideInterpreted|BenchmarkDecideBatch|BenchmarkFuseSample|BenchmarkFuseBatch)$' \
    -benchmem -benchtime "${BENCHTIME:-2s}" -count 1 \
    ./internal/ml/svm ./internal/ml/bayes ./internal/featsel ./internal/serve ./internal/core ./internal/fuse \
    | tee "$tmp"

awk '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bop = $(i - 1)
        if ($i == "allocs/op") aop = $(i - 1)
    }
    if (ns == "") next
    if (bop == "") bop = "null"
    if (aop == "") aop = "null"
    lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bop, aop)
}
END {
    print "{"
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}
' "$tmp" > "$out"
echo "wrote $out"
