module hpcap

go 1.22
