// Package hpcap is an online capacity measurement system for multi-tier
// websites driven by hardware performance counter metrics — a faithful
// reproduction of Rao and Xu, "Online Measurement of the Capacity of
// Multi-tier Websites Using Hardware Performance Counters" (ICDCS 2008) —
// together with the complete evaluation substrate the paper used: a
// simulated two-tier TPC-W testbed, NetBurst-style counter synthesis, a
// Sysstat-style OS metric collector, and from-scratch implementations of
// the four synopsis learners (linear regression, naive Bayes, TAN, SVM).
//
// The package is a curated facade over the internal packages. The four
// layers a user touches are:
//
//   - Workload and testbed: build a tpcw schedule (Browsing/Shopping/
//     Ordering mixes, ramps, spikes, interleavings, diurnal cycles, flash
//     crowds, slow leaks — or a scripted TrafficProgram) and run it on
//     the simulated two-tier site with NewTestbed, or on an arbitrary
//     tier DAG of replica pools with NewDAGTestbed, whose bottleneck pool
//     the registry Autoscaler can grow and shrink online.
//   - Capacity monitor: train a Monitor (per-workload, per-tier performance
//     synopses plus the two-level coordinated predictor) on labeled window
//     traces, then predict through per-stream MonitorSessions for online
//     overload/bottleneck inference.
//   - Serving: a ServingPipeline ingests live per-tier 1-second samples
//     for any number of sites, windows them, fans prediction across
//     per-site sessions, publishes Decisions, and can gate a testbed's
//     admission control — resilient to late, missing, and NaN samples.
//     An optional Bayesian counter-fusion stage (ServingConfig.Fuse)
//     de-noises faulted streams in place: NaN and stuck counters are
//     imputed from physically coupled neighbors, and each decision
//     carries a confidence the lifecycle guard honors.
//     For distributed deployments, FrameSender (cmd/capagent) ships
//     sequenced sample frames over TCP to a FrameServer (cmd/capserved)
//     that write-ahead logs every accepted frame before ingest, so a
//     crashed daemon replays back to its exact pre-crash decision state.
//   - Experiments: a Lab regenerates every table and figure of the paper's
//     evaluation (Table I, Figures 3-4, the timing, overhead and ablation
//     studies) at QuickScale or FullScale.
//
// # Conventions
//
// A trained Monitor is immutable shared state; every concurrent prediction
// stream takes its own MonitorSession via Monitor.NewSession. The
// Monitor's own Predict/Feedback/ResetHistory are deprecated single-stream
// compatibility shims over an internal default session; all callers have
// migrated to sessions and the shims will be removed next cycle. For the
// allocation-free hot path, lower the monitor once with Monitor.Compile
// and predict through CompiledSession.PredictInto (or decide whole batches
// with CompiledMonitor.DecideAll) — outputs are bit-identical to the
// interpreted session path.
//
// Failures surface as wrapped sentinel errors — ErrUntrained,
// ErrDimensionMismatch, ErrBadConfig — so callers branch with errors.Is
// rather than string matching.
//
// See the runnable programs under examples/, the experiment CLI at
// cmd/capbench, and the serving daemon at cmd/capserved.
package hpcap

import (
	"hpcap/internal/baseline"
	"hpcap/internal/core"
	"hpcap/internal/cpu"
	"hpcap/internal/drift"
	"hpcap/internal/experiment"
	"hpcap/internal/fuse"
	"hpcap/internal/metrics"
	"hpcap/internal/ml"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/ml/linreg"
	"hpcap/internal/ml/svm"
	"hpcap/internal/osstat"
	"hpcap/internal/pi"
	"hpcap/internal/predictor"
	"hpcap/internal/registry"
	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
	"hpcap/internal/wal"
	"hpcap/internal/wire"
)

// Typed sentinel errors; every failure returned by the monitor, its
// sessions, and the serving pipeline wraps one of these.
var (
	// ErrUntrained marks prediction attempted through an untrained
	// Monitor or a session over one.
	ErrUntrained = core.ErrUntrained
	// ErrDimensionMismatch marks an observation whose per-tier vectors do
	// not match the metric layout the monitor was trained on.
	ErrDimensionMismatch = core.ErrDimensionMismatch
	// ErrBadConfig marks invalid training or serving configuration.
	ErrBadConfig = core.ErrBadConfig
)

// Workload modeling (TPC-W).
type (
	// Mix is a TPC-W traffic mix over the 14 interaction types.
	Mix = tpcw.Mix
	// Interaction is one of the 14 TPC-W web interactions.
	Interaction = tpcw.Interaction
	// Phase is one segment of a load schedule.
	Phase = tpcw.Phase
	// Schedule is a piecewise load program for the emulated browsers.
	Schedule = tpcw.Schedule
)

// The TPC-W traffic mixes and workload constructors.
var (
	Browsing     = tpcw.Browsing
	Shopping     = tpcw.Shopping
	Ordering     = tpcw.Ordering
	UnknownMix   = tpcw.Unknown
	FlashVariant = tpcw.FlashVariant
	NewMix       = tpcw.NewMix
	Steady       = tpcw.Steady
	Ramp         = tpcw.Ramp
	Spike        = tpcw.Spike
	Interleaved  = tpcw.Interleaved
	Concat       = tpcw.Concat
)

// Deterministic traffic shapes and the traffic-program grammar: compose
// diurnal cycles, flash crowds, and slow leaks directly, or script them
// as text ("steady mix=browsing base=400 for=300; flash base=400
// peak=2000000 for=120 hold=30 decay=30") and expand with
// TrafficProgram.Schedule. ParseTraffic never panics on garbage (the
// traffic fuzz test pins this) and round-trips TrafficProgram.String.
type (
	// TrafficProgram is a scripted load program of consecutive shapes.
	TrafficProgram = tpcw.Traffic
	// TrafficShape is one clause of a traffic program.
	TrafficShape = tpcw.Shape
	// TrafficShapeKind names a clause type (steady, ramp, diurnal,
	// flash, leak).
	TrafficShapeKind = tpcw.ShapeKind
)

// Traffic-shape constructors and the program parser.
var (
	Diurnal      = tpcw.Diurnal
	FlashCrowd   = tpcw.FlashCrowd
	SlowLeak     = tpcw.SlowLeak
	ParseTraffic = tpcw.ParseTraffic
	MixByName    = tpcw.MixByName
)

// Testbed simulation.
type (
	// ServerConfig configures the simulated two-tier site.
	ServerConfig = server.Config
	// TierConfig configures one tier.
	TierConfig = server.TierConfig
	// Testbed is the simulated two-tier website under TPC-W load.
	Testbed = server.Testbed
	// Snapshot is one interval of testbed telemetry.
	Snapshot = server.Snapshot
	// TierID names a tier (TierApp, TierDB).
	TierID = server.TierID
	// AdmissionState is what an admission controller observes.
	AdmissionState = server.AdmissionState
	// AdmissionFunc decides whether to admit a request.
	AdmissionFunc = server.AdmissionFunc
)

// Tiers of the testbed.
const (
	TierApp  = server.TierApp
	TierDB   = server.TierDB
	NumTiers = server.NumTiers
)

// DefaultServerConfig returns the calibrated two-tier testbed
// configuration (app ≈ Pentium 4 Tomcat, DB ≈ Pentium D MySQL).
var DefaultServerConfig = server.DefaultConfig

// NewTestbed builds a simulated website under the given schedule.
var NewTestbed = server.NewTestbed

// Tier-DAG topologies: arbitrary pool graphs (load balancer → replicated
// app pool → caches → sharded stores) behind the same monitor and
// serving surface as the legacy two-tier testbed. Each pool folds its
// replica-mean counters into one of the fixed monitor tier slots, so a
// monitor trained on the paper's testbed serves any DAG.
type (
	// TopologyConfig defines a tier DAG: named replica pools wired by
	// Downstream edges, requests entering at Entry.
	TopologyConfig = server.TopologyConfig
	// PoolConfig describes one replica pool (role, replicas and scaling
	// bounds, per-replica tier configuration, demand routing).
	PoolConfig = server.PoolConfig
	// PoolKind classifies a pool's role (front, cache, store).
	PoolKind = server.PoolKind
	// DAGTestbed is the simulated website over a TopologyConfig.
	DAGTestbed = server.DAGTestbed
	// DAGSnapshot is one interval of per-pool testbed telemetry; Legacy
	// folds it to the two-slot Snapshot shape.
	DAGSnapshot = server.DAGSnapshot
	// PoolSnapshot is one pool's slice of a DAGSnapshot.
	PoolSnapshot = server.PoolSnapshot
	// PoolLoad is one pool's offered-demand-to-capacity reading, the
	// autoscaler's bottleneck signal.
	PoolLoad = server.PoolLoad
)

// The pool roles of a tier DAG.
const (
	PoolFront = server.PoolFront
	PoolCache = server.PoolCache
	PoolStore = server.PoolStore
)

// Topology constructors: TwoTierTopology expresses a legacy Config as
// the degenerate DAG (byte-identical replay, pinned by the equivalence
// test); DefaultTopologyConfig is the calibrated four-pool reference
// DAG; BottleneckPool picks the highest-loaded pool from a PoolLoad
// slice.
var (
	NewDAGTestbed         = server.NewDAGTestbed
	TwoTierTopology       = server.TwoTierTopology
	DefaultTopologyConfig = server.DefaultTopologyConfig
	BottleneckPool        = server.BottleneckPool
)

// Metric levels.
type Level = metrics.Level

// The metric sources: the two levels the paper compares plus their
// combination (the paper's proposed future-work extension).
const (
	LevelOS       = metrics.LevelOS
	LevelHPC      = metrics.LevelHPC
	LevelCombined = metrics.LevelCombined
)

// Metric collection.
type (
	// HPCCollector synthesizes the hardware-performance-counter view of
	// a tier (the PerfCtr substitute).
	HPCCollector = cpu.Collector
	// OSCollector synthesizes the Sysstat view of a tier (64 metrics).
	OSCollector = osstat.Collector
	// MetricAggregator folds 1-second samples into analysis windows.
	MetricAggregator = metrics.Aggregator
	// MetricSample is one aggregated window of metrics plus the
	// application-level health observed over it.
	MetricSample = metrics.Sample
)

// Collector constructors and window aggregation.
var (
	NewHPCCollector = cpu.NewCollector
	NewOSCollector  = osstat.NewCollector
	NewAggregator   = metrics.NewAggregator
)

// Metric name tables and collection costs.
var (
	HPCMetricNames = cpu.MetricNames
	OSMetricNames  = osstat.MetricNames
)

// Per-sample collection costs (normalized CPU seconds), reproducing the
// paper's <0.5% (counters) vs ≈4% (Sysstat) overhead finding.
const (
	HPCSampleCost = metrics.HPCSampleCost
	OSSampleCost  = metrics.OSSampleCost
	// DefaultWindow is the paper's 30-second aggregation window.
	DefaultWindow = metrics.DefaultWindow
)

// Capacity monitor (the paper's contribution).
type (
	// Monitor is the trained two-level coordinated capacity measurement
	// system. A trained Monitor is safe for concurrent use: give each
	// concurrent prediction stream its own MonitorSession (NewSession).
	Monitor = core.Monitor
	// MonitorSession is one independent prediction stream over a shared
	// trained Monitor: it owns its temporal history while reading the
	// shared synopses and predictor tables.
	MonitorSession = core.Session
	// MonitorConfig tunes monitor training.
	MonitorConfig = core.Config
	// Observation is one window of per-tier metric vectors.
	Observation = core.Observation
	// LabeledWindow is a training window with ground truth.
	LabeledWindow = core.LabeledWindow
	// TrainingSet is one training workload's labeled trace.
	TrainingSet = core.TrainingSet
	// Prediction is the monitor's per-window output.
	Prediction = core.Prediction
	// CoordinatorConfig tunes the two-level predictor (h, δ, scheme).
	CoordinatorConfig = predictor.Config
	// Scheme is the tie-break inside the ±δ band.
	Scheme = predictor.Scheme
	// Labeler derives offline overload ground truth from
	// application-level health.
	Labeler = pi.Labeler
	// CompiledMonitor is a trained Monitor lowered into branch-free
	// scoring tables (Monitor.Compile): same decisions bit-for-bit, zero
	// allocations per prediction.
	CompiledMonitor = core.CompiledMonitor
	// CompiledSession is one prediction stream over a CompiledMonitor;
	// PredictInto reuses the caller's Prediction and scratch.
	CompiledSession = core.CompiledSession
	// DecideBatch is caller-owned scratch for CompiledMonitor.DecideAll,
	// the batched whole-shard decision pass.
	DecideBatch = core.DecideBatch
)

// Tie-break schemes.
const (
	Optimistic  = predictor.Optimistic
	Pessimistic = predictor.Pessimistic
)

// TrainMonitor trains a capacity monitor; see core.Train.
var TrainMonitor = core.Train

// Online serving layer.
type (
	// ServingPipeline streams per-tier 1-second samples for any number of
	// sites through a shared trained Monitor, emitting per-window
	// Decisions. It degrades gracefully on late/missing/NaN samples and
	// exports per-site counters in Prometheus text format (WriteMetrics).
	ServingPipeline = serve.Pipeline
	// ServingConfig tunes a ServingPipeline (window, staleness budget,
	// decision callback).
	ServingConfig = serve.Config
	// StreamSample is one 1-second metric vector from one tier of a
	// monitored site.
	StreamSample = serve.Sample
	// Decision is the pipeline's output for one completed window.
	Decision = serve.Decision
	// SiteStats is a snapshot of one site's serving counters.
	SiteStats = serve.SiteStats
)

// NewServingPipeline builds the online serving pipeline over a trained
// monitor; see the serve package for streaming semantics.
var NewServingPipeline = serve.NewPipeline

// Bayesian counter fusion: an optional de-noising stage between the
// collectors and the window aggregator. A per-(site, tier) Fuser runs a
// small linear-Gaussian factor graph over physically coupled counters
// with Kalman-style per-counter filters: NaN and stuck readings are
// imputed from their coupled neighbors instead of dropping the sample,
// implausible jumps are gated, and every fused sample carries a
// confidence in [0,1]. Enable it on a pipeline with ServingConfig.Fuse;
// clean samples pass through bit-identical to a fusion-less pipeline.
type (
	// FuseConfig tunes the fusion stage (filter noise, gate width, stuck
	// run length, confidence floor).
	FuseConfig = fuse.Config
	// Fuser is the per-stream fusion state for one counter vector layout.
	Fuser = fuse.Fuser
	// FuseResult is one fused sample: values, confidence, and the imputed
	// and gated counts.
	FuseResult = fuse.Result
)

// Fusion constructors: DefaultFuseConfig is the tuned default stage;
// NewFuser builds a standalone fuser for one stream (the pipeline builds
// its own per site and tier when ServingConfig.Fuse is set).
var (
	DefaultFuseConfig = fuse.DefaultConfig
	NewFuser          = fuse.New
)

// Sharded fleet-scale ingest: the same serving semantics partitioned
// across single-writer shards with batched queues, for 100k-site fleets
// on one daemon. Decision streams are byte-identical to the unsharded
// pipeline's.
type (
	// ShardedPipeline is the fleet-scale serving pipeline: sites hashed
	// to shards, per-shard ingest goroutines, counters merged only at
	// snapshot time.
	ShardedPipeline = serve.ShardedPipeline
	// ShardConfig sets shard count, batch size, and queue capacity.
	ShardConfig = serve.ShardConfig
	// SiteRef is a pre-resolved site handle for the allocation-free
	// ingest fast path (Register once, IngestRef per sample).
	SiteRef = serve.SiteRef
	// ShardStats is one shard's queue and rejection counters.
	ShardStats = serve.ShardStats
	// Batcher is a single-producer ingest buffer: Add per sample or
	// AddSite per fused site scrape, Flush before Sync.
	Batcher = serve.Batcher
)

// NewShardedPipeline builds the sharded fleet-scale pipeline;
// DefaultShardConfig is the tuned default geometry, and SiteShard is the
// exported routing hash (pure FNV-1a of the site name).
var (
	NewShardedPipeline = serve.NewShardedPipeline
	DefaultShardConfig = serve.DefaultShardConfig
	SiteShard          = serve.SiteShard
)

// Distributed collection: capagent edge senders batch fused per-site
// scrapes into sequenced wire frames and ship them to capserved over
// TCP; the server appends every accepted frame to a write-ahead sample
// log strictly before ingest, so a crashed daemon replays the log back
// to the exact pre-crash decision state. See cmd/capagent and DESIGN.md
// §12 for the protocol and recovery procedure.
type (
	// WireFrame is one site's batch of fused scrapes plus its per-site
	// sequence number.
	WireFrame = wire.Frame
	// WireSample is one fused scrape inside a frame: every tier's
	// 1-second vector under one timestamp.
	WireSample = wire.Sample
	// AgentConfig tunes a FrameSender (batch size, queue depth, retry
	// budget, backoff).
	AgentConfig = wire.AgentConfig
	// FrameSender is the edge agent's transmit side: a bounded send
	// queue that batches, sequences, retries with backoff, and sheds
	// oldest-first under backpressure so loss surfaces as sequence gaps
	// at the server rather than a wedged agent.
	FrameSender = wire.Sender
	// SenderStats counts a FrameSender's deliveries, retries, and drops.
	SenderStats = wire.SenderStats
	// FrameIngest turns decoded frames into pipeline ingest with
	// per-site sequence accounting (gaps, duplicates, reorders).
	FrameIngest = serve.Ingest
	// SiteTransport is the frame-level view of one site's feed,
	// distinct from its sample-level serving staleness.
	SiteTransport = serve.SiteTransport
	// FrameServer accepts agent connections and pumps frames through
	// the WAL hook into a shared FrameIngest.
	FrameServer = serve.FrameServer
	// ListenConfig shapes a FrameServer (address, frame size bound,
	// read timeout).
	ListenConfig = serve.ListenConfig
	// FrameServerStats counts a FrameServer's connection and frame
	// traffic.
	FrameServerStats = serve.ServerStats
	// SampleLog is the write-ahead sample log: frame payloads appended
	// before ingest, checksummed, torn-tail tolerant, replayable.
	SampleLog = wal.Log
	// SampleLogConfig tunes a SampleLog (sync cadence, record bound).
	SampleLogConfig = wal.Config
)

// Wire protocol errors and codec entry points. ErrFrame marks a
// malformed frame payload; ErrLogCorrupt marks a WAL whose body (not
// tail) fails its checksum.
var (
	ErrFrame      = wire.ErrFrame
	ErrLogCorrupt = wal.ErrCorrupt

	// EncodeFrame appends a frame's canonical payload encoding;
	// DecodeFrame parses one back (never panics, preserves Seq
	// bit-exactly).
	EncodeFrame = wire.AppendFrame
	DecodeFrame = wire.DecodeFrame
)

// Distributed-collection constructors.
var (
	NewFrameSender     = wire.NewSender
	DefaultAgentConfig = wire.DefaultAgentConfig

	NewFrameIngest      = serve.NewIngest
	NewFrameServer      = serve.NewFrameServer
	DefaultListenConfig = serve.DefaultListenConfig

	// OpenSampleLog opens (creating or recovering) a write-ahead sample
	// log and reports how many intact records survived; ReplaySampleLog
	// streams a log's records read-only, e.g. back through a
	// FrameIngest after a crash.
	OpenSampleLog          = wal.Open
	ReplaySampleLog        = wal.Replay
	DefaultSampleLogConfig = wal.DefaultConfig
)

// Adaptive model lifecycle: drift detection over the labeled decision
// stream, versioned model storage, and retrain-shadow-swap management.
type (
	// SwapEvent announces a model hot-swap on one pipeline site.
	SwapEvent = serve.SwapEvent
	// DriftConfig tunes the per-site drift detectors (accuracy decay,
	// PI-correlation rank loss, request-mix shift).
	DriftConfig = drift.Config
	// DriftDetector watches one site's labeled decision stream.
	DriftDetector = drift.Detector
	// DriftObservation is one decided window paired with its delayed
	// ground truth.
	DriftObservation = drift.Observation
	// DriftSignal is one fired drift test.
	DriftSignal = drift.Signal
	// ModelStore is the per-site versioned history of trained monitors.
	ModelStore = registry.Store
	// ModelVersion is one entry in a site's model history.
	ModelVersion = registry.Version
	// LifecycleManager pairs decisions with ground truth, detects drift,
	// retrains candidates, and hot-swaps winners into the pipeline.
	LifecycleManager = registry.Manager
	// LifecycleConfig tunes a LifecycleManager.
	LifecycleConfig = registry.Config
	// LifecycleEvent is one drift or retrain occurrence.
	LifecycleEvent = registry.Event
	// GroundTruth is the delayed application-level label for one window.
	GroundTruth = registry.Truth
)

// Lifecycle constructors.
var (
	NewDriftDetector    = drift.New
	NewModelStore       = registry.NewStore
	NewLifecycleManager = registry.NewManager
)

// Closed-loop autoscaling: the registry's second actuator besides the
// admission valve. An Autoscaler consumes the pipeline's overload
// verdicts together with live per-pool loads, arms on a streak of
// confirming windows, and grows or shrinks the bottleneck pool through
// the Scaler the caller provides (a DAGTestbed in the simulated fleet, a
// cluster API in a real one), with a cooldown between actions. See
// DESIGN.md §15 for the scaler-versus-valve arbitration.
type (
	// Autoscaler turns overload verdicts plus pool loads into replica
	// actions.
	Autoscaler = registry.Autoscaler
	// AutoscalerConfig tunes the streak, ratio, and cooldown gates.
	AutoscalerConfig = registry.AutoscalerConfig
	// Scaler is the actuator surface an Autoscaler drives.
	Scaler = registry.Scaler
	// ScaleEvent announces one applied replica action.
	ScaleEvent = registry.ScaleEvent
)

// Autoscaler constructors.
var (
	NewAutoscaler           = registry.NewAutoscaler
	DefaultAutoscalerConfig = registry.DefaultAutoscalerConfig
)

// Learners.
type Learner = ml.Learner

// The four synopsis builders of the paper.
var (
	LinearRegression = linreg.Learner
	NaiveBayes       = bayes.NaiveLearner
	TAN              = bayes.TANLearner
	SVM              = svm.Learner
)

// Experiments (the paper's evaluation).
type (
	// Lab caches workloads and traces shared by the experiments.
	Lab = experiment.Lab
	// Scale sizes the generated traces.
	Scale = experiment.Scale
	// Workload is a mix with its measured saturation knees.
	Workload = experiment.Workload
	// TestKind names one of the four test workloads.
	TestKind = experiment.TestKind
	// Trace is a generated labeled run of the testbed.
	Trace = experiment.Trace
	// Table1Result is the synopsis accuracy grid (Table I).
	Table1Result = experiment.Table1Result
	// Fig3Result is the PI-vs-throughput series (Figure 3).
	Fig3Result = experiment.Fig3Result
	// Fig4Result is the coordinated accuracy grid (Figure 4).
	Fig4Result = experiment.Fig4Result
	// TimingResult is the learner cost table (§V.B).
	TimingResult = experiment.TimingResult
	// OverheadResult is the collection overhead table (§V.D).
	OverheadResult = experiment.OverheadResult
	// AblationResult is the history/scheme sensitivity grid (§V.C).
	AblationResult = experiment.AblationResult
	// BaselineResult compares conventional detectors with the monitor.
	BaselineResult = experiment.BaselineResult
	// LevelResult compares OS, HPC and combined monitors.
	LevelResult = experiment.LevelResult
	// DriftReplay is the end-to-end adaptive-lifecycle replay result
	// (Lab.RunDriftReplay).
	DriftReplay = experiment.DriftReplay
	// FusionReplay is the counter-fusion storm replay result
	// (Lab.RunFusionReplay): the same stream served clean, corrupted raw,
	// and corrupted fused, with windowed error and drift fires per run.
	FusionReplay = experiment.FusionReplay
	// AutoscaleReplay is the closed-loop capacity experiment result
	// (Lab.RunAutoscaleReplay): the same flash crowd served under
	// admission-only shedding and under autoscaling, with the scaling arm
	// serving strictly more.
	AutoscaleReplay = experiment.AutoscaleReplay
)

// Conventional overload detectors (the comparators of §I/§II.A).
type (
	// PIThreshold is the calibrated single-PI rule.
	PIThreshold = baseline.PIThreshold
	// RTDetector is the response-time trigger with its dead-time delay.
	RTDetector = baseline.RTDetector
	// UtilDetector is the CPU-utilization trigger.
	UtilDetector = baseline.UtilDetector
)

// CalibratePIThreshold fits the single-PI rule on a labeled PI series.
var CalibratePIThreshold = baseline.CalibratePIThreshold

// The four test workloads of the evaluation.
const (
	TestBrowsing    = experiment.TestBrowsing
	TestOrdering    = experiment.TestOrdering
	TestInterleaved = experiment.TestInterleaved
	TestUnknown     = experiment.TestUnknown
)

// Experiment entry points.
var (
	NewLab     = experiment.NewLab
	QuickScale = experiment.QuickScale
	FullScale  = experiment.FullScale
	FindKnee   = experiment.FindKnee
)
