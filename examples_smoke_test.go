package hpcap_test

import (
	"context"
	"os/exec"
	"testing"
	"time"
)

// TestExamplesSmoke builds and runs every example program end to end —
// they all operate at QuickScale, so each is a few seconds of work. The
// test shells out to the go tool; it is skipped under -short and when the
// toolchain is unavailable.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs are slow; skipped in -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	for _, name := range []string{
		"quickstart", "admission", "bottleneckshift", "capacityplan", "serving", "adaptive", "fusion",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("%s produced no output", name)
			}
		})
	}
}
