package hpcap_test

import (
	"errors"
	"testing"

	"hpcap"
)

// TestFacadeWorkloadHelpers exercises the re-exported TPC-W surface.
func TestFacadeWorkloadHelpers(t *testing.T) {
	for _, mix := range []hpcap.Mix{
		hpcap.Browsing(), hpcap.Shopping(), hpcap.Ordering(),
		hpcap.UnknownMix(), hpcap.FlashVariant(hpcap.Browsing()),
		hpcap.NewMix("custom", 0.3),
	} {
		if err := mix.Validate(); err != nil {
			t.Errorf("%s: %v", mix.Name, err)
		}
	}
	sched := hpcap.Concat(
		hpcap.Steady(hpcap.Shopping(), 50, 100),
		hpcap.Ramp(hpcap.Ordering(), 10, 100, 4, 60),
		hpcap.Spike(hpcap.Browsing(), 40, 200, 120, 60, 2),
		hpcap.Interleaved(hpcap.Browsing(), hpcap.Ordering(), 80, 300, 4),
	)
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeTestbedRun drives the simulated site through the facade and
// checks the first-class telemetry.
func TestFacadeTestbedRun(t *testing.T) {
	cfg := hpcap.DefaultServerConfig()
	tb, err := hpcap.NewTestbed(cfg, hpcap.Steady(hpcap.Shopping(), 40, 200))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	tb.RunInterval(60)
	snap := tb.RunInterval(30)
	if snap.Completions == 0 {
		t.Error("no completions on a live site")
	}
	if snap.Tiers[hpcap.TierApp].BusySeconds <= 0 {
		t.Error("app tier reports no busy time")
	}

	// Collectors through the facade.
	hpc := hpcap.NewHPCCollector(hpcap.TierApp, cfg.App.Machine, 0.02, 1)
	osc := hpcap.NewOSCollector(hpcap.TierDB, 1024, 0.05, 2)
	if got := len(hpc.Collect(snap, 30)); got != len(hpcap.HPCMetricNames) {
		t.Errorf("HPC vector = %d values, want %d", got, len(hpcap.HPCMetricNames))
	}
	if got := len(osc.Collect(snap, 30)); got != len(hpcap.OSMetricNames) {
		t.Errorf("OS vector = %d values, want %d", got, len(hpcap.OSMetricNames))
	}
	if len(hpcap.OSMetricNames) != 64 {
		t.Errorf("OS metric count = %d, want the paper's 64", len(hpcap.OSMetricNames))
	}
}

// TestFacadeLabeler checks the health labeler surface.
func TestFacadeLabeler(t *testing.T) {
	l := hpcap.Labeler{}
	if l.Label(hpcap.MetricSample{MeanRT: 5, Throughput: 10, ArrivalRate: 10}) != 1 {
		t.Error("slow window not labeled overloaded")
	}
	if l.Label(hpcap.MetricSample{MeanRT: 0.05, Throughput: 10, ArrivalRate: 10}) != 0 {
		t.Error("fast window labeled overloaded")
	}
}

// TestFacadeCollectionCosts pins the re-exported constants to the paper's
// overhead story.
func TestFacadeCollectionCosts(t *testing.T) {
	if hpcap.HPCSampleCost >= hpcap.OSSampleCost {
		t.Error("HPC collection must be cheaper than OS collection")
	}
	if hpcap.DefaultWindow != 30 {
		t.Errorf("DefaultWindow = %d, want the paper's 30 s", hpcap.DefaultWindow)
	}
}

// TestFacadeTrainMonitor trains a Naive monitor on synthetic windows via
// the exported TrainMonitor function.
func TestFacadeTrainMonitor(t *testing.T) {
	m := trainTinyMonitor(t)
	var obs hpcap.Observation
	obs.Vectors[0] = []float64{0.95}
	obs.Vectors[1] = []float64{0.2}
	var sess *hpcap.MonitorSession = m.NewSession()
	p, err := sess.Predict(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Overload || p.Bottleneck != hpcap.TierApp {
		t.Errorf("prediction = %+v, want app-tier overload", p)
	}

	// A concurrent caller takes its own independent session over the
	// shared monitor and sees the same inference.
	sp, err := m.NewSession().Predict(obs)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Overload != p.Overload || sp.Bottleneck != p.Bottleneck {
		t.Errorf("second session prediction %+v differs from first %+v", sp, p)
	}
}

// TestFacadeSentinelErrors checks the re-exported typed errors surface
// through the facade and match with errors.Is.
func TestFacadeSentinelErrors(t *testing.T) {
	if _, err := hpcap.TrainMonitor(hpcap.LevelHPC, nil, nil, hpcap.MonitorConfig{}); !errors.Is(err, hpcap.ErrBadConfig) {
		t.Errorf("bad training config: got %v, want ErrBadConfig", err)
	}
	var m hpcap.Monitor
	if _, err := m.NewSession().Predict(hpcap.Observation{}); !errors.Is(err, hpcap.ErrUntrained) {
		t.Errorf("session over untrained monitor: got %v, want ErrUntrained", err)
	}
	if _, err := hpcap.NewServingPipeline(&m, hpcap.ServingConfig{}); !errors.Is(err, hpcap.ErrUntrained) {
		t.Errorf("pipeline over untrained monitor: got %v, want ErrUntrained", err)
	}
	if _, err := hpcap.NewServingPipeline(nil, hpcap.ServingConfig{}); !errors.Is(err, hpcap.ErrBadConfig) {
		t.Errorf("pipeline over nil monitor: got %v, want ErrBadConfig", err)
	}
}

// TestFacadeServingPipeline streams synthetic samples for one window
// through the re-exported serving surface.
func TestFacadeServingPipeline(t *testing.T) {
	m := trainTinyMonitor(t)
	var decisions []hpcap.Decision
	pipe, err := hpcap.NewServingPipeline(m, hpcap.ServingConfig{
		Window:     10,
		OnDecision: func(d hpcap.Decision) { decisions = append(decisions, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		for tier := hpcap.TierID(0); tier < hpcap.NumTiers; tier++ {
			v := 0.2
			if tier == hpcap.TierApp {
				v = 0.95 // the trained overload signature: hot app tier
			}
			pipe.Ingest(hpcap.StreamSample{
				Site: "s", Tier: tier, Time: float64(i), Values: []float64{v},
			})
		}
	}
	if len(decisions) != 1 {
		t.Fatalf("decided %d windows, want 1", len(decisions))
	}
	if !decisions[0].Prediction.Overload {
		t.Error("saturated stream not flagged overloaded")
	}
	var st hpcap.SiteStats
	var ok bool
	if st, ok = pipe.SiteStats("s"); !ok || st.WindowsDecided != 1 {
		t.Errorf("site stats = %+v ok=%t, want one decided window", st, ok)
	}
}

// trainTinyMonitor builds a one-metric Naive monitor whose hot tier is the
// app tier.
func trainTinyMonitor(t *testing.T) *hpcap.Monitor {
	t.Helper()
	sets := []hpcap.TrainingSet{{Workload: "w"}}
	for i := 0; i < 40; i++ {
		over := 0
		if (i/5)%2 == 1 {
			over = 1
		}
		var vecs [hpcap.NumTiers][]float64
		for tier := 0; tier < hpcap.NumTiers; tier++ {
			v := 0.2
			if over == 1 && tier == 0 {
				v = 0.9
			}
			vecs[tier] = []float64{v + 0.01*float64(i%5)}
		}
		sets[0].Windows = append(sets[0].Windows, hpcap.LabeledWindow{
			Observation: hpcap.Observation{Time: float64(30 * i), Vectors: vecs},
			Overload:    over,
			Bottleneck:  hpcap.TierApp,
		})
	}
	m, err := hpcap.TrainMonitor(hpcap.LevelHPC, []string{"x"}, sets, hpcap.MonitorConfig{
		Learner: hpcap.NaiveBayes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFacadeLearners confirms all four learner constructors work.
func TestFacadeLearners(t *testing.T) {
	for _, mk := range []func() hpcap.Learner{
		hpcap.LinearRegression, hpcap.NaiveBayes, hpcap.TAN, hpcap.SVM,
	} {
		l := mk()
		if l.Name == "" || l.New == nil {
			t.Errorf("learner %+v incomplete", l)
		}
		if c := l.New(); c == nil {
			t.Errorf("learner %s constructs nil", l.Name)
		}
	}
}

// TestFacadeDistributedCollection exercises the re-exported wire codec
// and write-ahead sample log: encode a frame, log it, recover the log,
// and replay the payload back into an identical frame.
func TestFacadeDistributedCollection(t *testing.T) {
	if errs := hpcap.DefaultAgentConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultAgentConfig invalid: %v", errs)
	}
	if errs := hpcap.DefaultListenConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultListenConfig invalid: %v", errs)
	}
	if errs := hpcap.DefaultSampleLogConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultSampleLogConfig invalid: %v", errs)
	}

	frame := hpcap.WireFrame{
		Site: "edge-1",
		Seq:  7,
		Samples: []hpcap.WireSample{{
			Time: 30,
			Vecs: [hpcap.NumTiers][]float64{{1, 2}, {3, 4}},
		}},
	}
	payload := hpcap.EncodeFrame(nil, &frame)
	if _, err := hpcap.DecodeFrame(payload[:len(payload)-1]); !errors.Is(err, hpcap.ErrFrame) {
		t.Fatalf("truncated payload error = %v, want ErrFrame", err)
	}

	path := t.TempDir() + "/samples.wal"
	log, recovered, err := hpcap.OpenSampleLog(path, hpcap.SampleLogConfig{SyncEvery: -1})
	if err != nil || recovered != 0 {
		t.Fatalf("OpenSampleLog = recovered %d, %v", recovered, err)
	}
	if err := log.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	var replayed []hpcap.WireFrame
	n, err := hpcap.ReplaySampleLog(path, hpcap.SampleLogConfig{}, func(p []byte) error {
		f, err := hpcap.DecodeFrame(p)
		if err != nil {
			return err
		}
		replayed = append(replayed, f)
		return nil
	})
	if err != nil || n != 1 {
		t.Fatalf("ReplaySampleLog = %d, %v", n, err)
	}
	got := replayed[0]
	if got.Site != frame.Site || got.Seq != frame.Seq || len(got.Samples) != 1 ||
		got.Samples[0].Time != frame.Samples[0].Time {
		t.Fatalf("replayed frame %+v differs from original %+v", got, frame)
	}
}

// TestFacadeTopologyAutoscale drives the tier-DAG and autoscaling surface
// through the facade: parse a traffic program, run it on the reference
// DAG, and let an Autoscaler grow the bottleneck pool through the
// testbed.
func TestFacadeTopologyAutoscale(t *testing.T) {
	prog, err := hpcap.ParseTraffic(
		"steady mix=browsing base=100 for=60; flash base=100 peak=900 for=120 hold=60 decay=30")
	if err != nil {
		t.Fatal(err)
	}
	topo := hpcap.DefaultTopologyConfig()
	for i := range topo.Pools {
		if topo.Pools[i].MinReplicas > 0 {
			topo.Pools[i].Replicas = topo.Pools[i].MinReplicas
		}
	}
	tb, err := hpcap.NewDAGTestbed(topo, prog.Schedule())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}

	acfg := hpcap.DefaultAutoscalerConfig()
	acfg.Scaler = dagScaler{tb}
	acfg.UpWindows = 1
	acfg.UpRatio = 0.3
	var events []hpcap.ScaleEvent
	acfg.OnScale = func(e hpcap.ScaleEvent) { events = append(events, e) }
	as, err := hpcap.NewAutoscaler(acfg)
	if err != nil {
		t.Fatal(err)
	}

	var seq int64
	for elapsed := 0.0; elapsed < prog.Schedule().Duration(); elapsed += 30 {
		dsnap := tb.RunInterval(30)
		snap := dsnap.Legacy()
		loads := tb.PoolLoads()
		overload := snap.MeanRT > 2
		as.Observe(hpcap.Decision{
			Site: "site", Seq: seq, Time: snap.Time,
			Prediction: hpcap.Prediction{Overload: overload},
		}, loads)
		seq++
	}
	if len(events) == 0 {
		t.Fatal("flash crowd at minimum replicas triggered no scale event")
	}
	if got := tb.Replicas(events[0].Pool); got < 2 {
		t.Errorf("pool %s has %d replicas after scale-up, want >= 2", events[0].Pool, got)
	}
	if hpcap.BottleneckPool(tb.PoolLoads()) < 0 {
		t.Error("BottleneckPool found no pool")
	}
}

// dagScaler adapts a DAGTestbed to the facade Scaler surface.
type dagScaler struct{ tb *hpcap.DAGTestbed }

func (s dagScaler) AddReplica(_, pool string) (int, bool)    { return s.tb.AddReplica(pool) }
func (s dagScaler) RemoveReplica(_, pool string) (int, bool) { return s.tb.RemoveReplica(pool) }
